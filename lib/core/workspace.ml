module Graph = Qcp_graph.Graph
module Monomorph = Qcp_graph.Monomorph
module Circuit = Qcp_circuit.Circuit
module Gate = Qcp_circuit.Gate
module Dag = Qcp_circuit.Dag

let pattern = Circuit.interaction_graph

(* Alignability oracle shared by the classic and windowed splitters: the
   workspace's interaction pattern grows one pair at a time, and every
   query asks whether the pattern extended with one more pair still embeds
   into the fast-interaction graph.  The state bundles the incremental
   monomorphism engine with three accelerations that never change an
   answer: a witness shortcut (one concrete embedding, extended in
   O(degree) when it covers the new pair), degree exclusion against the
   target's maximum degree, and an exact union-find decision procedure on
   path targets. *)
type oracle = {
  o_extends : int * int -> bool;
      (* Counted oracle query: does the pattern plus this pair embed? *)
  o_admit : int * int -> unit; (* commit a pair the oracle admitted *)
  o_reset : unit -> unit; (* start a new subcircuit *)
  o_witness : unit -> int array option;
      (* copy of the current witness embedding, [-1] for unmapped qubits *)
  o_embeds_singleton : int * int -> bool;
      (* counted: does the pair embed on its own? *)
}

let make_oracle ?oracle_calls ?budget ~adjacency ~qubits () =
  let count () = match oracle_calls with Some r -> incr r | None -> () in
  let inc = Monomorph.Incremental.create ~qubits ~target:adjacency in
  let pdeg q = Monomorph.Incremental.degree inc q in
  (* Witness shortcut: remember one concrete monomorphism of the current
     pair set (plus its occupied-vertex mask).  A new pair whose endpoints
     the witness already maps to an adjacent vertex pair is embeddable by
     that same witness; a pair with exactly one mapped endpoint can often be
     absorbed by assigning the other endpoint a free neighbor of the mapped
     image.  Both answer yes constructively, in O(degree), without building
     a pattern graph or searching; when neither applies we fall back to the
     full search, so answers never differ from the plain oracle's.  Counted
     as an oracle call either way -- the shortcut changes the cost of a
     query, never its answer. *)
  let witness = ref None in
  let witness_covers (a, b) =
    match !witness with
    | None -> false
    | Some (m, taken) ->
      let claim q v =
        m.(q) <- v;
        taken.(v) <- true;
        true
      in
      let absorb unmapped mapped =
        Array.exists
          (fun v -> (not taken.(v)) && claim unmapped v)
          (Graph.neighbors adjacency m.(mapped))
      in
      if m.(a) >= 0 then
        if m.(b) >= 0 then Graph.mem_edge adjacency m.(a) m.(b)
        else absorb b a
      else if m.(b) >= 0 then absorb a b
      else
        (* Both endpoints new: any free adjacent vertex pair hosts them. *)
        let rec scan v =
          if v >= Graph.n adjacency then false
          else if
            (not taken.(v))
            && Array.exists
                 (fun u -> (not taken.(u)) && claim a v && claim b u)
                 (Graph.neighbors adjacency v)
          then true
          else scan (v + 1)
        in
        scan 0
  in
  (* Degree exclusion: a pattern vertex of degree d needs a target vertex of
     degree >= d, so exceeding the target's maximum degree refutes
     embeddability without a search (the common case when a stage closes). *)
  let max_deg = Graph.max_degree adjacency in
  (* On a path target the oracle is decidable exactly without any search: a
     degree-bounded pattern embeds into an n-vertex path iff every component
     is a simple path (acyclic given degrees <= 2) and at most n vertices
     are used.  Components and the used-vertex count are maintained
     incrementally with a union-find over the pattern qubits. *)
  let target_is_path =
    let n = Graph.n adjacency in
    Graph.edge_count adjacency = n - 1
    && max_deg <= 2
    && Qcp_graph.Paths.is_connected adjacency
  in
  let uf = Array.init qubits (fun q -> q) in
  let rec find q = if uf.(q) = q then q else begin
      let root = find uf.(q) in
      uf.(q) <- root;
      root
    end
  in
  let used = ref 0 in
  let admit ((a, b) as pair) =
    if pdeg a = 0 then incr used;
    if pdeg b = 0 then incr used;
    Monomorph.Incremental.add inc pair;
    let ra = find a and rb = find b in
    if ra <> rb then uf.(ra) <- rb
  in
  let extends ((a, b) as pair) =
    count ();
    witness_covers pair
    || (pdeg a < max_deg && pdeg b < max_deg)
       &&
       if target_is_path then
         find a <> find b
         && !used
            + (if pdeg a = 0 then 1 else 0)
            + (if pdeg b = 0 then 1 else 0)
            <= Graph.n adjacency
       else
         match Monomorph.Incremental.embeds_with ?budget inc pair with
         | Some m ->
           let taken = Array.make (Graph.n adjacency) false in
           Array.iter (fun v -> if v >= 0 then taken.(v) <- true) m;
           witness := Some (m, taken);
           true
         | None -> false
  in
  let reset () =
    witness := None;
    Monomorph.Incremental.reset inc;
    Array.iteri (fun q _ -> uf.(q) <- q) uf;
    used := 0
  in
  let witness_copy () =
    match !witness with None -> None | Some (m, _) -> Some (Array.copy m)
  in
  let embeds_singleton (a, b) =
    count ();
    Monomorph.exists ~pattern:(Graph.of_edges qubits [ (a, b) ]) ~target:adjacency
  in
  {
    o_extends = extends;
    o_admit = admit;
    o_reset = reset;
    o_witness = witness_copy;
    o_embeds_singleton = embeds_singleton;
  }

(* One pass over the gate list; the monomorphism oracle is consulted only
   when a gate introduces a *new* interaction pair, so the number of oracle
   calls is bounded by the number of distinct pairs, not by the gate count. *)
let split ?oracle_calls ~adjacency circuit =
  let qubits = Circuit.qubits circuit in
  let o = make_oracle ?oracle_calls ~adjacency ~qubits () in
  let subcircuits = ref [] in
  let gates = ref [] in
  let pair_set = Hashtbl.create 64 in
  let close () =
    if !gates <> [] then begin
      subcircuits := Circuit.make ~qubits (List.rev !gates) :: !subcircuits;
      gates := [];
      o.o_reset ();
      Hashtbl.reset pair_set
    end
  in
  let error = ref None in
  let consume gate =
    if !error = None then
      match Gate.qubits gate with
      | [ _ ] -> gates := gate :: !gates
      | [ a; b ] ->
        let pair = (Int.min a b, Int.max a b) in
        if Hashtbl.mem pair_set pair then gates := gate :: !gates
        else if o.o_extends pair then begin
          o.o_admit pair;
          Hashtbl.replace pair_set pair ();
          gates := gate :: !gates
        end
        else if not (o.o_embeds_singleton pair) then
          error :=
            Some
              (Printf.sprintf
                 "interaction %s cannot be aligned with any fast interaction"
                 (Gate.name gate))
        else begin
          close ();
          o.o_admit pair;
          Hashtbl.replace pair_set pair ();
          gates := [ gate ]
        end
      | _ -> assert false
  in
  List.iter consume (Circuit.gates circuit);
  match !error with
  | Some msg -> Error msg
  | None ->
    close ();
    Ok (List.rev !subcircuits)

(* Windowed subcircuit formation: instead of reading the gate list in its
   written order, stream gates out of the dependency DAG smallest-ready-
   index first, deferring gates whose interaction pair the oracle refuses
   instead of closing the stage immediately.  Independent gates slide past
   a refused pair, packing stages fuller; once [window] gates are deferred
   the stage closes and the deferred gates re-enter the ready queue against
   the fresh pattern.  The emitted order is a valid DAG linearization — and
   under the default commutation predicate (only disjoint-qubit gates
   commute) every per-qubit gate subsequence is exactly the source
   circuit's, so the concatenated stages are unitarily identical to the
   input.  Workspace growth per stage is O(window) deferred gates on top of
   the pattern itself; nothing ever materializes whole-circuit levels.

   A pair refused against the current pattern stays refused for the rest of
   the stage (the pattern only grows), so deferred gates are not retried
   until a close resets the pattern.  A pair refused by an *empty* pattern
   is unembeddable on its own, which is the classic splitter's fatal case:
   the one-pair search either finds a witness among the first edges it
   touches or exhausts a tiny space, so [budget] cannot turn an embeddable
   singleton into an error.

   Stage formation rides {!Dag.Stream}: the dependency frontier is pulled
   lazily out of the gate array (O(qubits + live) state, never the offline
   DAG's edge lists), and each closed stage is handed to the [stage] fold
   immediately, so a spilling consumer never holds more than the stage in
   flight.  The stream's pop order equals the offline heap's (gates are
   pulled only while nothing pulled is ready), so stage boundaries are
   identical to the materialized splitter's. *)
let fold_windowed ?oracle_calls ?(budget = 10_000) ~window ~adjacency ~init
    ~stage circuit =
  let qubits = Circuit.qubits circuit in
  let window = Int.max 1 window in
  let o = make_oracle ?oracle_calls ~budget ~adjacency ~qubits () in
  let stream = Dag.Stream.create circuit in
  let emitted = ref [] in
  let acc = ref init in
  let pair_set = Hashtbl.create 64 in
  let deferred = ref [] in
  let ndeferred = ref 0 in
  let error = ref None in
  let emit i =
    emitted := Dag.Stream.gate stream i :: !emitted;
    Dag.Stream.emit stream i
  in
  let close () =
    if !emitted <> [] then begin
      acc := stage !acc (Circuit.make ~qubits (List.rev !emitted), o.o_witness ());
      emitted := [];
      o.o_reset ();
      Hashtbl.reset pair_set
    end;
    (* Deferred gates become eligible again against the fresh pattern. *)
    List.iter (fun i -> Dag.Stream.requeue stream i) !deferred;
    deferred := [];
    ndeferred := 0
  in
  let running = ref true in
  while !error = None && !running do
    match Dag.Stream.next stream with
    | None -> if !ndeferred > 0 then close () else running := false
    | Some i -> (
      match Gate.qubits (Dag.Stream.gate stream i) with
      | [ _ ] -> emit i
      | [ a; b ] ->
        let pair = (Int.min a b, Int.max a b) in
        if Hashtbl.mem pair_set pair then emit i
        else if o.o_extends pair then begin
          o.o_admit pair;
          Hashtbl.replace pair_set pair ();
          emit i
        end
        else if Hashtbl.length pair_set = 0 then
          error :=
            Some
              (Printf.sprintf
                 "interaction %s cannot be aligned with any fast interaction"
                 (Gate.name (Dag.Stream.gate stream i)))
        else begin
          deferred := i :: !deferred;
          incr ndeferred;
          if !ndeferred >= window then close ()
        end
      | _ -> assert false)
  done;
  match !error with
  | Some msg -> Error msg
  | None ->
    close ();
    Ok !acc

let split_windowed ?oracle_calls ?budget ~window ~adjacency circuit =
  Result.map List.rev
    (fold_windowed ?oracle_calls ?budget ~window ~adjacency ~init:[]
       ~stage:(fun acc s -> s :: acc)
       circuit)
