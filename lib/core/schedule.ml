module Circuit = Qcp_circuit.Circuit
module Gate = Qcp_circuit.Gate
module Timing = Qcp_circuit.Timing
module Levelize = Qcp_circuit.Levelize
module Environment = Qcp_env.Environment

type event = {
  label : string;
  gate : Qcp_circuit.Gate.t;
  vertices : int list;
  start : float;
  finish : float;
  stage : int;
  is_swap : bool;
}

type t = { env : Environment.t; all_events : event list; total : float }

(* Mirror of Timing.asap_times that reports every gate with its start and
   finish times; the reuse-cap bookkeeping matches the timing model so that
   the schedule's makespan equals Placer.runtime. *)
let asap_stage ~env ~reuse_cap ~emit ~clock circuit =
  let current_pair = Array.make (Environment.size env) None in
  let run_acc = Array.make (Environment.size env) 0.0 in
  let capped t = match reuse_cap with None -> t | Some cap -> Float.min cap t in
  List.iter
    (fun gate ->
      match gate with
      | Gate.G1 (_, v) ->
        let duration = Environment.single_delay env v *. Gate.duration gate in
        let start = clock.(v) in
        clock.(v) <- start +. duration;
        emit gate [ v ] start clock.(v)
      | Gate.G2 (_, a, b) ->
        let pair = Some (Int.min a b, Int.max a b) in
        let t = Gate.duration gate in
        let effective =
          if current_pair.(a) = pair && current_pair.(b) = pair then begin
            match reuse_cap with
            | None ->
              run_acc.(a) <- run_acc.(a) +. t;
              run_acc.(b) <- run_acc.(a);
              t
            | Some cap ->
              let acc = run_acc.(a) in
              let eff = Float.min cap (acc +. t) -. Float.min cap acc in
              run_acc.(a) <- acc +. t;
              run_acc.(b) <- run_acc.(a);
              eff
          end
          else begin
            current_pair.(a) <- pair;
            current_pair.(b) <- pair;
            run_acc.(a) <- t;
            run_acc.(b) <- t;
            capped t
          end
        in
        let duration = Environment.coupling_delay env a b *. effective in
        let start = Float.max clock.(a) clock.(b) in
        clock.(a) <- start +. duration;
        clock.(b) <- clock.(a);
        emit gate [ a; b ] start clock.(a))
    (Circuit.gates circuit)

let sequential_stage ~env ~reuse_cap ~emit ~clock circuit =
  let capped t = match reuse_cap with None -> t | Some cap -> Float.min cap t in
  let cost gate =
    match gate with
    | Gate.G1 (_, v) -> Environment.single_delay env v *. Gate.duration gate
    | Gate.G2 (_, a, b) ->
      Environment.coupling_delay env a b *. capped (Gate.duration gate)
  in
  let level_start = ref (Array.fold_left Float.max 0.0 clock) in
  List.iter
    (fun level ->
      let width =
        List.fold_left (fun acc gate -> Float.max acc (cost gate)) 0.0 level
      in
      List.iter
        (fun gate ->
          emit gate (Gate.qubits gate) !level_start (!level_start +. cost gate))
        level;
      level_start := !level_start +. width)
    (Levelize.levels circuit);
  Array.iteri (fun v _ -> clock.(v) <- !level_start) clock

(* Iterate every gate of the program in execution order with its scheduled
   start/finish times (including free zero-duration gates). *)
let iter_timed_gates program ~f =
  let env = program.Placer.env in
  let m = Environment.size env in
  let reuse_cap = program.Placer.options.Options.reuse_cap in
  let clock = Array.make m 0.0 in
  List.iteri
    (fun index stage ->
      let circuit, is_swap =
        match stage with
        | Placer.Compute { placement; circuit } ->
          (Circuit.map_qubits (fun q -> placement.(q)) ~qubits:m circuit, false)
        | Placer.Permute net ->
          (Qcp_route.Swap_network.to_circuit ~qubits:m net, true)
      in
      let emit gate vertices start finish =
        f ~stage:(index + 1) ~is_swap ~gate ~vertices ~start ~finish
      in
      match program.Placer.options.Options.model with
      | Timing.Asap -> asap_stage ~env ~reuse_cap ~emit ~clock circuit
      | Timing.Sequential -> sequential_stage ~env ~reuse_cap ~emit ~clock circuit)
    program.Placer.stages;
  Array.fold_left Float.max 0.0 clock

let of_program program =
  let events = ref [] in
  let total =
    iter_timed_gates program ~f:(fun ~stage ~is_swap ~gate ~vertices ~start ~finish ->
        if finish > start then
          events :=
            { label = Gate.name gate; gate; vertices; start; finish; stage; is_swap }
            :: !events)
  in
  let ordered =
    List.sort
      (fun a b ->
        match Float.compare a.start b.start with
        | 0 -> List.compare Int.compare a.vertices b.vertices
        | c -> c)
      (List.rev !events)
  in
  { env = program.Placer.env; all_events = ordered; total }

let events t = t.all_events

let makespan t = t.total

let event_count t = List.length t.all_events

let busy_time t v =
  List.fold_left
    (fun acc e -> if List.mem v e.vertices then acc +. (e.finish -. e.start) else acc)
    0.0 t.all_events

let is_consistent t =
  let ok = ref true in
  List.iter
    (fun e ->
      if e.start < -1e-9 || e.finish > t.total +. 1e-9 || e.finish < e.start then
        ok := false)
    t.all_events;
  (* Pairwise overlap check per nucleus. *)
  let m = Environment.size t.env in
  for v = 0 to m - 1 do
    let mine = List.filter (fun e -> List.mem v e.vertices) t.all_events in
    let rec scan = function
      | a :: (b :: _ as rest) ->
        if b.start < a.finish -. 1e-9 then ok := false;
        scan rest
      | [ _ ] | [] -> ()
    in
    scan (List.sort (fun a b -> Float.compare a.start b.start) mine)
  done;
  !ok

let render ?(width = 72) program =
  let t = of_program program in
  let env = t.env in
  let m = Environment.size env in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "pulse schedule: %d events, makespan %.4f sec\n"
       (event_count t) (t.total /. 10000.0));
  if t.total > 0.0 then begin
    let column time =
      Int.min (width - 1) (int_of_float (time /. t.total *. float_of_int width))
    in
    for v = 0 to m - 1 do
      let row = Bytes.make width '-' in
      List.iter
        (fun e ->
          if List.mem v e.vertices then begin
            let mark = if e.is_swap then 's' else '#' in
            for c = column e.start to Int.max (column e.start) (column (e.finish -. 1e-12)) do
              Bytes.set row c mark
            done
          end)
        t.all_events;
      Buffer.add_string buf
        (Printf.sprintf "%-4s |%s|\n" (Environment.nucleus env v)
           (Bytes.to_string row))
    done
  end;
  Buffer.contents buf
