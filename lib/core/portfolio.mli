(** Deterministic strategy portfolio: race placers against a shared
    incumbent.

    The enabled {!Strategy} solvers attack the same instance concurrently
    over the {!Qcp_util.Task_pool}.  Every achieved runtime is published
    into one {!Incumbent} cell, so the bounded-search cutoff of each
    classic pipeline — and the lower-bound ordering of its sweeps — prunes
    against the best result {e any} strategy has produced so far, not just
    its own incumbent.

    The race is deterministic by construction (when {!Options.t.deadline}
    is [None]): a strategy either completes with output bit-identical to
    running it alone, or aborts carrying proof that its final runtime
    strictly exceeds a published value — hence it could neither win nor
    tie.  Every strategy achieving the winning runtime therefore completes
    under {e every} schedule, and the reduce (earliest strategy in
    canonical order achieving the strict minimum replayed runtime) names
    the same winner at any [jobs] value.

    With a finite deadline the race becomes an anytime search: non-anchor
    strategies abort between stages once the budget expires, while the
    anchor (first enabled strategy) ignores the clock so a race always
    returns a valid placement. *)

type status =
  | Completed of float
      (** Finished, achieving this replayed runtime (delay units). *)
  | Pruned  (** Provably unable to win or tie; abandoned mid-run. *)
  | Expired  (** Out of deadline budget. *)
  | Infeasible of string  (** Could not place the instance at all. *)

type entry = {
  strategy : string;
  status : status;
  wall_seconds : float;
  peer_prunes : int;
      (** Stage sweeps tightened and aborts caused by peers' published
          runtimes during this strategy's run. *)
}

type report = {
  program : Placer.program;  (** The winning placement. *)
  winner : string;
  runtime : float;  (** [Placer.runtime program], delay units. *)
  lower_bound : float;
      (** {!Baselines.lower_bound} — placement-independent. *)
  gap : float;
      (** [runtime /. lower_bound] ([1.0] when the bound is trivial):
          certified optimality gap of the race's result. *)
  entries : entry list;  (** One per enabled strategy, canonical order. *)
}

val run :
  ?jobs:int ->
  ?share:bool ->
  Options.t ->
  Qcp_env.Environment.t ->
  Qcp_circuit.Circuit.t ->
  (report, string) result
(** Race {!Options.t.portfolio_strategies} on the instance.  [jobs]
    defaults to [options.jobs]; strategies map over the shared pool and
    any surplus parallelism inside a strategy serializes through the
    pool's nested-use guard.  [share] (default [true]) exists for
    ablation: [false] gives every strategy a private incumbent cell, so
    cross-strategy pruning is off but each strategy still runs — the
    [portfolio/cross-prune] benchmark measures exactly this difference.
    [Error] when the strategy list is invalid or every strategy is
    infeasible.

    Telemetry (when {!Qcp_obs.Metrics.enabled}): one [portfolio/<name>]
    span per strategy under cat ["portfolio"], plus global counters
    [portfolio.races], [portfolio.strategy_wins.<name>] and
    [portfolio.candidates_pruned_by_peer].  The report's plain-int fields
    carry the same information with telemetry off. *)

val place :
  ?jobs:int ->
  Options.t ->
  Qcp_env.Environment.t ->
  Qcp_circuit.Circuit.t ->
  Placer.outcome
(** {!run} collapsed onto the classic outcome type: the winning program,
    or [Unplaceable] with the race's error. *)

val place_batch :
  ?jobs:int ->
  (Options.t * Qcp_env.Environment.t * Qcp_circuit.Circuit.t) list ->
  Placer.outcome list
(** Batch counterpart of {!place} with {!Placer.place_batch}'s contract:
    outcomes in input order, bit-identical to sequential {!place} calls
    (each job's inner race serializes when the outer fan-out saturates the
    pool). *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable race table: winner, runtime, gap, then one line per
    strategy with status, wall seconds and peer-prune count. *)

(** Per-instance-feature win history biasing future races' per-strategy
    effort budgets (enabled by {!Options.t.portfolio_learn}).

    The table is process-global and mutex-protected; keys bucket the
    instance coarsely (power-of-two qubit and gate-count buckets plus a
    gates-per-qubit density bucket).  Effort multipliers are
    Laplace-smoothed win shares clamped to [\[0.5, 2.0\]], so an empty
    history yields exactly [1.0] for every strategy (the unbiased race)
    and no strategy is ever starved outright. *)
module Learn : sig
  val record :
    Qcp_env.Environment.t -> Qcp_circuit.Circuit.t -> winner:string -> unit
  (** Credit [winner] for this instance's feature bucket. *)

  val effort :
    Qcp_env.Environment.t ->
    Qcp_circuit.Circuit.t ->
    arity:int ->
    string ->
    float
  (** Effort multiplier for a strategy in an [arity]-way race:
      [clamp (arity * (wins + 1) / (total + arity)) 0.5 2.0]. *)

  val reset : unit -> unit
  (** Drop all history (tests). *)

  (** {2 Persistence}

      The win table can round-trip through a small versioned dotfile so
      the strategy bias survives process restarts — both repeated CLI
      runs and [qcp serve] restarts.  The format is one header line
      ([qcp-learn v1]) followed by
      [<qubit-bucket> <gate-bucket> <density-bucket> <strategy> <wins>]
      rows.  Nothing here runs implicitly: callers that want persistence
      (the CLI under [--learn], the daemon) load at startup and save at
      exit. *)

  val default_path : unit -> string option
  (** [$QCP_LEARN_FILE] when set and non-empty; [None] when it is set but
      empty (an explicit off switch); else [$HOME/.qcp_learn]; [None]
      when neither variable offers a path. *)

  val save : string -> unit
  (** Write the current table (deterministic row order: equal tables
      write byte-identical files).  Raises [Sys_error] on I/O failure. *)

  val load : string -> bool
  (** Merge a previously saved table additively into the in-process one
      (counts accumulate).  Returns [false] — merging {e nothing} — on a
      missing file, a version-header mismatch or any malformed row: a
      stale or corrupt dotfile must never break a run. *)
end
