let range n = List.init n (fun i -> i)

let range_from lo hi = if hi <= lo then [] else List.init (hi - lo) (fun i -> lo + i)

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec drop n = function
  | [] -> []
  | _ :: rest as all -> if n <= 0 then all else drop (n - 1) rest

let min_by_key key = function
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun (b, kb) x ->
           let kx = key x in
           if kx < kb then (x, kx) else (b, kb))
         (first, key first) rest)

let min_by key list = Option.map fst (min_by_key key list)

let max_by key list = min_by (fun x -> -.key x) list

let sum_floats = List.fold_left ( +. ) 0.0

let pairs list =
  let rec loop acc = function
    | [] -> List.rev acc
    | x :: rest ->
      let acc = List.fold_left (fun acc y -> (x, y) :: acc) acc rest in
      loop acc rest
  in
  loop [] list

let index_of pred list =
  let rec loop i = function
    | [] -> None
    | x :: rest -> if pred x then Some i else loop (i + 1) rest
  in
  loop 0 list

let chunks n list =
  assert (n > 0);
  let rec loop acc = function
    | [] -> List.rev acc
    | rest -> loop (take n rest :: acc) (drop n rest)
  in
  loop [] list
