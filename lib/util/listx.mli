(** Small list/array helpers shared across the library. *)

val range : int -> int list
(** [range n] is [\[0; 1; ...; n-1\]]. *)

val range_from : int -> int -> int list
(** [range_from lo hi] is [\[lo; ...; hi-1\]]. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (or fewer if the list is short). *)

val drop : int -> 'a list -> 'a list
(** The list without its first [n] elements. *)

val min_by : ('a -> float) -> 'a list -> 'a option
(** Element minimizing the key; [None] on an empty list. *)

val min_by_key : ('a -> float) -> 'a list -> ('a * float) option
(** Like {!min_by} but also returns the winning key, so callers needing the
    score do not have to evaluate the (possibly expensive) key again.  Ties
    keep the earliest element, exactly as {!min_by}. *)

val max_by : ('a -> float) -> 'a list -> 'a option
(** Element maximizing the key; [None] on an empty list. *)

val sum_floats : float list -> float

val pairs : 'a list -> ('a * 'a) list
(** All unordered pairs of distinct positions. *)

val index_of : ('a -> bool) -> 'a list -> int option
(** Position of the first element satisfying the predicate. *)

val chunks : int -> 'a list -> 'a list list
(** Split into consecutive chunks of size [n] (last chunk may be short). *)
