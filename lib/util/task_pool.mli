(** Persistent work-stealing pool over OCaml 5 domains.

    The pool fixes the per-call [Domain.spawn] waste of the earlier parallel
    sections: helper domains are spawned lazily on first parallel demand,
    reused across every subsequent placement, and joined cleanly through an
    [at_exit] hook, so [dune runtest] never leaks a domain.

    Work is distributed by chunked atomic-index stealing: a parallel region
    publishes one batch descriptor, every participating domain (the caller
    plus any recruited helpers) claims slot indices with
    [Atomic.fetch_and_add], and the batch completes when every slot has run.
    There is no per-slot queue node and no Chase-Lev deque to maintain; for
    the library's workloads (hundreds of candidate scores per sweep) the
    single shared counter is never contended enough to matter.

    {b Deterministic reduction contract.}  [map_reduce] evaluates [map] into
    a slot array indexed by input position and folds the slots sequentially
    in index order on the caller, so its result is a pure function of the
    input order — independent of how slots interleave across domains.
    Exceptions raised by a slot are re-raised on the caller; when several
    slots raise in one batch, which exception propagates is unspecified.

    {b Nested-use guard.}  Entering a parallel region from inside a pool
    task would deadlock a fixed-size pool, so every entry point detects
    (via domain-local state) that it is running inside a pool task and
    falls back to inline sequential execution.  Outer parallelism therefore
    silently serializes inner layers — e.g. a [Placer.place_batch] job runs
    its candidate sweeps sequentially — which preserves both progress and
    bit-identical results. *)

type t
(** A pool of helper domains plus a queue of pending parallel regions. *)

val create : unit -> t
(** A fresh, empty pool.  Helpers are spawned on demand by the entry points
    below, never eagerly.  Intended for tests; library code shares the
    process-wide pool from {!get}. *)

val get : unit -> t
(** The process-wide shared pool, created on first use. *)

val helpers : t -> int
(** Number of helper domains currently alive in [pool] (excludes the
    caller).  Grows on demand up to the largest [jobs - 1] requested, never
    shrinks until {!shutdown}. *)

val env_jobs : unit -> int
(** Parallelism requested by the [QCP_JOBS] environment variable: the
    parsed value when it is a non-negative integer, 0 (sequential)
    otherwise or when unset.  Read once and memoized. *)

val parallel_for : t -> jobs:int -> body:(worker:int -> int -> unit) -> int -> unit
(** [parallel_for pool ~jobs ~body total] runs [body ~worker i] for every
    [i] in [0 .. total - 1], using at most [jobs] domains (the caller plus
    up to [jobs - 1] helpers).  [worker] is a dense id in [0 .. jobs - 1],
    unique per participating domain within this call, for indexing
    per-domain scratch slots; a given [worker] id never runs two slots
    concurrently.  With [jobs <= 1], inside a pool task, or after
    {!shutdown}, the slots run inline in index order with [worker = 0].
    Returns when every slot has finished; re-raises a slot's exception. *)

val map_reduce :
  t ->
  jobs:int ->
  map:(worker:int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  init:'a ->
  int ->
  'a
(** [map_reduce pool ~jobs ~map ~combine ~init total] computes
    [combine (... (combine init (map 0)) ...) (map (total - 1))]: the maps
    run in parallel as in {!parallel_for}, the fold runs sequentially on
    the caller in index order.  The result is a pure function of the input
    order regardless of steal interleaving (assuming [map] is pure). *)

val both : t -> jobs:int -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both pool ~jobs f g] evaluates [f ()] and [g ()], possibly in
    parallel, and returns both results.  [g] is published for a helper to
    steal while the caller runs [f]; if no helper claimed [g] by the time
    [f] finishes, the caller reclaims and runs it inline.  Unlike the
    sequential [(f (), g ())], [g] always runs even when [f] raises (its
    effects still happen); [f]'s exception then takes precedence over
    [g]'s.  With [jobs <= 1], inside a pool task, or after {!shutdown},
    this is exactly [let a = f () in let b = g () in (a, b)]. *)

val shutdown : t -> unit
(** Wake and join every helper domain.  Subsequent parallel calls on the
    pool run sequentially inline.  The shared {!get} pool is shut down
    automatically via [at_exit]; tests exercising {!create} may call this
    directly.  Idempotent. *)
