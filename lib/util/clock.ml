let now () = Unix.gettimeofday ()

let deadline_after budget =
  if budget = infinity then infinity else now () +. budget

let expired deadline = deadline < infinity && now () > deadline
