(** Minimal binary min-heap over nonnegative integers.

    Backs the windowed subcircuit splitter's ready-gate queue: gates are
    released out of the dependency DAG in arbitrary order but must be
    consumed smallest-index first so the emitted gate stream is a
    deterministic linearization.  Push and pop are O(log n); no
    allocation after construction beyond array doubling. *)

type t

val create : int -> t
(** [create hint] is an empty heap with initial capacity [hint]
    (clamped to at least 1). *)

val is_empty : t -> bool

val size : t -> int

val push : t -> int -> unit

val pop : t -> int
(** Remove and return the smallest element.
    Raises [Invalid_argument] on an empty heap. *)

val peek : t -> int
(** The smallest element without removing it.
    Raises [Invalid_argument] on an empty heap. *)
