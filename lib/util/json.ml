type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Parser: strict recursive descent over a string with one index.      *)
(* ------------------------------------------------------------------ *)

exception Fail of int * string

let fail i msg = raise (Fail (i, msg))

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let rec skip_ws s i =
  if i < String.length s && is_ws s.[i] then skip_ws s (i + 1) else i

let expect s i c =
  if i < String.length s && s.[i] = c then i + 1
  else fail i (Printf.sprintf "expected %C" c)

(* Fold a \uXXXX code unit (surrogate pairs combined by the caller) into
   UTF-8 bytes. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 s i =
  if i + 4 > String.length s then fail i "truncated \\u escape";
  let digit j =
    match s.[i + j] with
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | _ -> fail (i + j) "invalid hex digit"
  in
  (digit 0 lsl 12) lor (digit 1 lsl 8) lor (digit 2 lsl 4) lor digit 3

let parse_string s i =
  let i = expect s i '"' in
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= String.length s then fail i "unterminated string"
    else
      match s.[i] with
      | '"' -> (Buffer.contents buf, i + 1)
      | '\\' ->
        if i + 1 >= String.length s then fail i "truncated escape"
        else (
          match s.[i + 1] with
          | '"' -> Buffer.add_char buf '"'; go (i + 2)
          | '\\' -> Buffer.add_char buf '\\'; go (i + 2)
          | '/' -> Buffer.add_char buf '/'; go (i + 2)
          | 'b' -> Buffer.add_char buf '\b'; go (i + 2)
          | 'f' -> Buffer.add_char buf '\012'; go (i + 2)
          | 'n' -> Buffer.add_char buf '\n'; go (i + 2)
          | 'r' -> Buffer.add_char buf '\r'; go (i + 2)
          | 't' -> Buffer.add_char buf '\t'; go (i + 2)
          | 'u' ->
            let cp = hex4 s (i + 2) in
            if cp >= 0xD800 && cp <= 0xDBFF
               && i + 7 < String.length s
               && s.[i + 6] = '\\' && s.[i + 7] = 'u'
            then begin
              let lo = hex4 s (i + 8) in
              if lo >= 0xDC00 && lo <= 0xDFFF then begin
                add_utf8 buf
                  (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00));
                go (i + 12)
              end
              else begin
                add_utf8 buf cp;
                go (i + 6)
              end
            end
            else begin
              add_utf8 buf cp;
              go (i + 6)
            end
          | c -> fail (i + 1) (Printf.sprintf "invalid escape %C" c))
      | c -> Buffer.add_char buf c; go (i + 1)
  in
  go i

let parse_number s i =
  let len = String.length s in
  let j = ref i in
  let accept p = if !j < len && p s.[!j] then (incr j; true) else false in
  let digits () =
    let start = !j in
    while !j < len && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
    !j > start
  in
  ignore (accept (fun c -> c = '-') : bool);
  if not (digits ()) then fail !j "expected digit";
  if accept (fun c -> c = '.') && not (digits ()) then
    fail !j "expected fraction digit";
  if accept (fun c -> c = 'e' || c = 'E') then begin
    ignore (accept (fun c -> c = '+' || c = '-') : bool);
    if not (digits ()) then fail !j "expected exponent digit"
  end;
  match float_of_string_opt (String.sub s i (!j - i)) with
  | Some v -> (v, !j)
  | None -> fail i "invalid number"

let parse_literal s i word value =
  let n = String.length word in
  if i + n <= String.length s && String.sub s i n = word then (value, i + n)
  else fail i (Printf.sprintf "expected %s" word)

let rec parse_value s i =
  let i = skip_ws s i in
  if i >= String.length s then fail i "unexpected end of input"
  else
    match s.[i] with
    | '{' ->
      let rec members acc i =
        let i = skip_ws s i in
        let name, i = parse_string s i in
        let i = expect s (skip_ws s i) ':' in
        let v, i = parse_value s i in
        let i = skip_ws s i in
        if i < String.length s && s.[i] = ',' then
          members ((name, v) :: acc) (i + 1)
        else (List.rev ((name, v) :: acc), expect s i '}')
      in
      let j = skip_ws s (i + 1) in
      if j < String.length s && s.[j] = '}' then (Obj [], j + 1)
      else
        let fields, i = members [] (i + 1) in
        (Obj fields, i)
    | '[' ->
      let rec elements acc i =
        let v, i = parse_value s i in
        let i = skip_ws s i in
        if i < String.length s && s.[i] = ',' then elements (v :: acc) (i + 1)
        else (List.rev (v :: acc), expect s i ']')
      in
      let j = skip_ws s (i + 1) in
      if j < String.length s && s.[j] = ']' then (Arr [], j + 1)
      else
        let items, i = elements [] (i + 1) in
        (Arr items, i)
    | '"' ->
      let str, i = parse_string s i in
      (Str str, i)
    | 't' -> parse_literal s i "true" (Bool true)
    | 'f' -> parse_literal s i "false" (Bool false)
    | 'n' -> parse_literal s i "null" Null
    | '-' | '0' .. '9' ->
      let v, i = parse_number s i in
      (Num v, i)
    | c -> fail i (Printf.sprintf "unexpected %C" c)

let parse s =
  match parse_value s 0 with
  | v, i ->
    let i = skip_ws s i in
    if i = String.length s then Ok v
    else Error (Printf.sprintf "offset %d: trailing garbage" i)
  | exception Fail (i, msg) -> Error (Printf.sprintf "offset %d: %s" i msg)

(* ------------------------------------------------------------------ *)
(* Printer: compact and deterministic.                                 *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_number buf v =
  (* JSON has no NaN/infinity; these never appear in well-formed payloads,
     so mapping them to null beats emitting invalid output. *)
  if not (Float.is_finite v) then Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (string_of_int (int_of_float v))
  else Buffer.add_string buf (Printf.sprintf "%.12g" v)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> add_number buf v
  | Str s -> add_escaped buf s
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf name;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v && Float.abs v <= 1e15 ->
    Some (int_of_float v)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function Arr items -> Some items | _ -> None
