(** Minimal zero-dependency JSON: the value type, a strict recursive-descent
    parser and a deterministic compact printer.

    Exists for the line-delimited JSON surfaces of the serving path (the
    [qcp serve] request/response protocol and the streaming verifier over
    [--spill] files).  It is deliberately small: UTF-8 pass-through for
    strings (escapes decoded, [\uXXXX] folded to UTF-8), numbers as OCaml
    floats, no streaming parser — callers feed it one line at a time.

    The printer is deterministic: object members print in the order given,
    numbers print as integers when exactly integral (so round-trips of
    counters stay stable) and as ["%.12g"] otherwise.  Equal values
    therefore render to equal strings — the property the serving result
    cache's bit-identity contract rests on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document.  Trailing whitespace is allowed, trailing
    garbage is an error; errors carry a character offset and message. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact rendering (no whitespace beyond string contents). *)

(** {1 Accessors} — total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** First binding of the name in an object ([None] on non-objects). *)

val to_float : t -> float option

val to_int : t -> int option
(** [Num] values that are exactly integral. *)

val to_bool : t -> bool option

val to_str : t -> string option

val to_list : t -> t list option
