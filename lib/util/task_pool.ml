(* Chunked atomic-index stealing instead of Chase-Lev deques: every
   parallel region is one batch descriptor with a shared next-slot counter,
   so "stealing" is a fetch-and-add and the deque maintenance disappears.
   The pool keeps a FIFO of published regions; helper domains park on a
   condition variable between regions and are joined from [at_exit]. *)

type batch = {
  b_body : worker:int -> int -> unit;
  b_total : int;
  b_next : int Atomic.t; (* next unclaimed slot index *)
  b_workers : int Atomic.t; (* dense participant-id counter *)
  b_max_workers : int; (* = jobs: participants beyond this bail out *)
  b_completed : int Atomic.t; (* slots finished (including faulted) *)
  b_error : exn option Atomic.t; (* first slot exception, CAS-published *)
  b_mutex : Mutex.t;
  b_cond : Condition.t;
  mutable b_finished : bool;
  b_published : float; (* publish timestamp; 0.0 when telemetry is off *)
  b_claimed : int Atomic.t; (* CAS gate: first helper claim records wait *)
}

(* Pool telemetry lands in the process-global registry; each site first
   checks [Metrics.enabled] so the disabled path costs one atomic load. *)
module Obs = Qcp_obs.Metrics

let m_regions = Obs.counter Obs.global "pool.regions"

let m_slots = Obs.counter Obs.global "pool.slots"

let m_steals = Obs.counter Obs.global "pool.steals"

let m_queue_wait = Obs.histogram Obs.global "pool.queue_wait.seconds"

let m_region_seconds = Obs.histogram Obs.global "pool.region.seconds"

type single = {
  s_claim : int Atomic.t; (* 0 = unclaimed, 1 = claimed *)
  s_run : unit -> unit; (* stores its own result/exception internally *)
  s_mutex : Mutex.t;
  s_cond : Condition.t;
  mutable s_done : bool;
}

type item = Batch of batch | Single of single

type t = {
  lock : Mutex.t;
  work_cond : Condition.t; (* signaled when [queue] grows or [closed] flips *)
  mutable queue : item list; (* FIFO of regions still recruiting *)
  mutable domains : unit Domain.t list;
  mutable helper_count : int;
  mutable closed : bool;
  mutable exit_hooked : bool;
}

(* A domain executing pool work flags itself here; entry points consult the
   flag to serialize nested parallel regions instead of deadlocking. *)
let inside_key = Domain.DLS.new_key (fun () -> ref false)

let inside () = !(Domain.DLS.get inside_key)

let with_inside f =
  let r = Domain.DLS.get inside_key in
  r := true;
  Fun.protect ~finally:(fun () -> r := false) f

(* More helpers than cores never helps, and OCaml caps live domains
   (recommended max ~ the core count; hard max 128), so bound the pool. *)
let max_helpers = 31

let create () =
  {
    lock = Mutex.create ();
    work_cond = Condition.create ();
    queue = [];
    domains = [];
    helper_count = 0;
    closed = false;
    exit_hooked = false;
  }

let helpers pool = Mutex.protect pool.lock (fun () -> pool.helper_count)

let env_jobs =
  let memo =
    lazy
      (match Sys.getenv_opt "QCP_JOBS" with
      | None -> 0
      | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 0 -> n
        | _ -> 0))
  in
  fun () -> Lazy.force memo

let mark_batch_finished b =
  Mutex.protect b.b_mutex (fun () -> b.b_finished <- true);
  Condition.broadcast b.b_cond

let record_error b exn =
  if Option.is_none (Atomic.get b.b_error) then
    ignore (Atomic.compare_and_set b.b_error None (Some exn))

(* Claim and run slots until the batch's index counter is exhausted.  Every
   claimed slot bumps [b_completed] exactly once, even on exception, so the
   slot accounting (and hence [b_finished]) never wedges. *)
let run_batch b ~worker =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add b.b_next 1 in
    if i >= b.b_total then continue := false
    else begin
      (if Option.is_none (Atomic.get b.b_error) then
         try b.b_body ~worker i with exn -> record_error b exn);
      let done_count = 1 + Atomic.fetch_and_add b.b_completed 1 in
      if done_count = b.b_total then mark_batch_finished b
    end
  done

let run_single s =
  s.s_run ();
  Mutex.protect s.s_mutex (fun () -> s.s_done <- true);
  Condition.broadcast s.s_cond

let remove_item pool item =
  pool.queue <- List.filter (fun it -> it != item) pool.queue

(* Helper domains loop here: park until work or shutdown, join the head
   region, repeat.  A batch stays queued while it can still absorb
   participants; whichever domain finds it exhausted (or over its
   participant cap) unlinks it. *)
let rec helper_loop pool =
  Mutex.lock pool.lock;
  while pool.queue = [] && not pool.closed do
    Condition.wait pool.work_cond pool.lock
  done;
  match pool.queue with
  | [] ->
    Mutex.unlock pool.lock (* closed *)
  | item :: _ ->
    (match item with
    | Batch b ->
      let w = Atomic.fetch_and_add b.b_workers 1 in
      if w >= b.b_max_workers || Atomic.get b.b_next >= b.b_total then begin
        remove_item pool item;
        Mutex.unlock pool.lock
      end
      else begin
        Mutex.unlock pool.lock;
        (* Dispatch latency: publish-to-first-helper-claim, recorded once
           per region by whoever wins the CAS. *)
        if b.b_published > 0.0 && Atomic.compare_and_set b.b_claimed 0 1 then
          Obs.observe m_queue_wait (Unix.gettimeofday () -. b.b_published);
        with_inside (fun () -> run_batch b ~worker:w)
      end
    | Single s ->
      remove_item pool item;
      Mutex.unlock pool.lock;
      if Atomic.compare_and_set s.s_claim 0 1 then
        with_inside (fun () -> run_single s));
    helper_loop pool

let shutdown pool =
  let doomed =
    Mutex.protect pool.lock (fun () ->
        pool.closed <- true;
        Condition.broadcast pool.work_cond;
        let ds = pool.domains in
        pool.domains <- [];
        pool.helper_count <- 0;
        ds)
  in
  List.iter Domain.join doomed

(* Grow the helper set towards [wanted] (capped), registering the at_exit
   join on the first spawn so no test run leaks a domain. *)
let ensure_helpers pool wanted =
  let wanted = min wanted max_helpers in
  if wanted > 0 then
    Mutex.protect pool.lock (fun () ->
        if not pool.closed then begin
          if not pool.exit_hooked then begin
            pool.exit_hooked <- true;
            at_exit (fun () -> shutdown pool)
          end;
          while pool.helper_count < wanted do
            pool.domains <-
              Domain.spawn (fun () -> helper_loop pool) :: pool.domains;
            pool.helper_count <- pool.helper_count + 1
          done
        end)

let enqueue pool item =
  Mutex.protect pool.lock (fun () ->
      if pool.closed then false
      else begin
        pool.queue <- pool.queue @ [ item ];
        Condition.broadcast pool.work_cond;
        true
      end)

let sequential_for ~body total =
  for i = 0 to total - 1 do
    body ~worker:0 i
  done

let parallel_for pool ~jobs ~body total =
  if total <= 0 then ()
  else if jobs <= 1 || total = 1 || inside () || pool.closed then
    sequential_for ~body total
  else begin
    ensure_helpers pool (min (jobs - 1) (total - 1));
    let tele = Obs.enabled () in
    let body =
      if not tele then body
      else fun ~worker i ->
        Obs.incr m_slots;
        if worker > 0 then Obs.incr m_steals;
        body ~worker i
    in
    let published_at = if tele then Unix.gettimeofday () else 0.0 in
    let b =
      {
        b_body = body;
        b_total = total;
        b_next = Atomic.make 0;
        b_workers = Atomic.make 0;
        b_max_workers = jobs;
        b_completed = Atomic.make 0;
        b_error = Atomic.make None;
        b_mutex = Mutex.create ();
        b_cond = Condition.create ();
        b_finished = false;
        b_published = published_at;
        b_claimed = Atomic.make 0;
      }
    in
    (* The caller claims participant id 0 before publishing, so it always
       works the batch itself — helpers only add throughput. *)
    let w = Atomic.fetch_and_add b.b_workers 1 in
    let published = enqueue pool (Batch b) in
    with_inside (fun () -> run_batch b ~worker:w);
    if published then begin
      Mutex.lock b.b_mutex;
      while not b.b_finished do
        Condition.wait b.b_cond b.b_mutex
      done;
      Mutex.unlock b.b_mutex;
      Mutex.protect pool.lock (fun () -> remove_item pool (Batch b))
    end;
    if tele then begin
      Obs.incr m_regions;
      Obs.observe m_region_seconds (Unix.gettimeofday () -. published_at)
    end;
    match Atomic.get b.b_error with Some exn -> raise exn | None -> ()
  end

let map_reduce (type a) pool ~jobs ~map ~combine ~(init : a) total =
  if total <= 0 then init
  else begin
    let slots : a option array = Array.make total None in
    parallel_for pool ~jobs
      ~body:(fun ~worker i -> slots.(i) <- Some (map ~worker i))
      total;
    (* Sequential fold in index order: the reduction is a pure function of
       the input order, whatever the steal interleaving was. *)
    let acc = ref init in
    for i = 0 to total - 1 do
      match slots.(i) with
      | Some v -> acc := combine !acc v
      | None -> assert false
    done;
    !acc
  end

(* Run [g] inline if no helper claimed it yet, else wait for the claimant. *)
let settle_single s =
  if Atomic.compare_and_set s.s_claim 0 1 then s.s_run ()
  else begin
    Mutex.lock s.s_mutex;
    while not s.s_done do
      Condition.wait s.s_cond s.s_mutex
    done;
    Mutex.unlock s.s_mutex
  end

let both pool ~jobs f g =
  if jobs <= 1 || inside () || pool.closed then
    let a = f () in
    let b = g () in
    (a, b)
  else begin
    ensure_helpers pool (jobs - 1);
    let result = ref None in
    let s =
      {
        s_claim = Atomic.make 0;
        s_run = (fun () -> result := Some (try Ok (g ()) with exn -> Error exn));
        s_mutex = Mutex.create ();
        s_cond = Condition.create ();
        s_done = false;
      }
    in
    if not (enqueue pool (Single s)) then begin
      (* Lost a shutdown race: fall back to plain sequential evaluation. *)
      let a = f () in
      let b = g () in
      (a, b)
    end
    else begin
      let fv = try Ok (f ()) with exn -> Error exn in
      settle_single s;
      Mutex.protect pool.lock (fun () -> remove_item pool (Single s));
      match (fv, !result) with
      | Ok a, Some (Ok b) -> (a, b)
      | Error exn, _ -> raise exn (* [f]'s exception takes precedence *)
      | Ok _, Some (Error exn) -> raise exn
      | Ok _, None -> assert false
    end
  end

let shared = lazy (create ())

let get () = Lazy.force shared
