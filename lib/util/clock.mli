(** Deadline clock for anytime search cutoffs.

    One shared notion of "now" (seconds, float) for every deadline check in
    the library, so the choice of clock source lives in exactly one place.
    The stdlib exposes no monotonic clock; [Unix.gettimeofday] is the best
    zero-dependency approximation.  Deadline checks must therefore tolerate
    wall-clock steps: a backwards step only delays a cutoff (search keeps
    running), never aborts early with a wrong result — deadline aborts are
    advisory anytime cutoffs, not correctness conditions. *)

val now : unit -> float
(** Current time in seconds.  Comparable only against other {!now} values
    (and offsets of them); the absolute epoch is unspecified. *)

val deadline_after : float -> float
(** [deadline_after budget] is the absolute deadline [budget] seconds from
    now; [infinity] when [budget] is [infinity].  A non-positive [budget]
    yields an already-expired deadline. *)

val expired : float -> bool
(** [expired deadline] — whether [deadline] (an absolute {!now}-scale
    instant) has passed.  [infinity] never expires; checking it performs no
    clock read. *)
