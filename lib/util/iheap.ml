type t = { mutable data : int array; mutable len : int }

let create hint = { data = Array.make (max 1 hint) 0; len = 0 }

let is_empty h = h.len = 0

let size h = h.len

let grow h =
  let data = Array.make (2 * Array.length h.data) 0 in
  Array.blit h.data 0 data 0 h.len;
  h.data <- data

let push h x =
  if h.len = Array.length h.data then grow h;
  let data = h.data in
  let i = ref h.len in
  h.len <- h.len + 1;
  data.(!i) <- x;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if data.(parent) > data.(!i) then begin
      let tmp = data.(parent) in
      data.(parent) <- data.(!i);
      data.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek h =
  if h.len = 0 then invalid_arg "Iheap.peek: empty heap";
  h.data.(0)

let pop h =
  if h.len = 0 then invalid_arg "Iheap.pop: empty heap";
  let data = h.data in
  let top = data.(0) in
  h.len <- h.len - 1;
  data.(0) <- data.(h.len);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.len && data.(l) < data.(!smallest) then smallest := l;
    if r < h.len && data.(r) < data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = data.(!smallest) in
      data.(!smallest) <- data.(!i);
      data.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done;
  top
