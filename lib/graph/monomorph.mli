(** Subgraph monomorphism (injective edge-preserving embedding).

    This replaces the VFLib C++ library [27] used by the paper: given a
    pattern graph (the interaction graph of a workspace subcircuit) and a
    target graph (the fast-interaction adjacency graph of the physical
    environment), enumerate injective maps [f] with
    [pattern edge (u,v) => target edge (f u, f v)].

    The search is a VF2-style backtracking enumeration over the bitset
    adjacency kernel: candidate sets are the bitwise AND of the target
    neighbor masks of every already-mapped pattern neighbor, with
    degree-sequence and neighborhood-degree refutation up front.  Pattern
    vertices of degree zero are assigned no image ([-1] in the result); the
    placement layer positions such qubits separately.

    Determinism guarantee: pruning only removes branches that contain no
    monomorphism, and candidates are tried in increasing target-vertex
    order, so the result list -- which mappings, and in which order -- is
    identical to the reference backtracking enumerator's (property-tested
    in [test/suite_monomorph.ml]). *)

val enumerate :
  ?limit:int ->
  ?jobs:int ->
  ?root_cap:int ->
  pattern:Graph.t ->
  target:Graph.t ->
  unit ->
  int array list
(** Up to [limit] (default 100) monomorphisms.  Each result maps pattern
    vertex index to target vertex index, [-1] for isolated pattern vertices.
    Results are in deterministic search order.

    [jobs] (default 1) > 1 fans the search out over first-vertex choices
    across that many domains of the shared {!Qcp_util.Task_pool}; slices
    are merged back in first-image order, so the result list is
    bit-identical to the sequential one.  Only worthwhile when [limit] is
    large and subtrees are expensive.

    [root_cap] (default unbounded) keeps only that many candidate images
    for the first ordered pattern vertex, preferring targets whose degree
    is closest to the pattern vertex's (sparse candidate generation on
    large dense environments).  The result is a subsequence of the
    uncapped enumeration, still deterministic at any [jobs]; it may miss
    mappings an uncapped search would find, so it is a heuristic for
    callers with a fallback path. *)

val exists : pattern:Graph.t -> target:Graph.t -> bool
(** Whether at least one monomorphism exists. *)

val check : pattern:Graph.t -> target:Graph.t -> int array -> bool
(** Validate a candidate mapping: injective on non-negative entries and
    edge-preserving. *)

(** Incremental existence oracle for patterns grown one edge at a time.

    {!Qcp.Workspace.split} asks, per candidate interaction pair, whether the
    current pattern plus that pair still embeds into the target.  This API
    keeps the pattern as mutable adjacency bitsets over the qubit indices so
    a query runs directly on that structure instead of rebuilding a
    {!Graph.t} per call.  Answers agree with [exists] on the equivalent
    built graph (existence is search-order independent). *)
module Incremental : sig
  type t

  val create : qubits:int -> target:Graph.t -> t
  (** An empty pattern over [qubits] vertices against a fixed target. *)

  val reset : t -> unit
  (** Forget every added edge (start a new subcircuit). *)

  val add : t -> int * int -> unit
  (** Commit an edge to the pattern.  Self-loops and duplicates are
      ignored, mirroring {!Graph.of_edges}. *)

  val degree : t -> int -> int
  (** Current pattern degree of a qubit. *)

  val embeds_with : ?budget:int -> t -> int * int -> int array option
  (** [embeds_with t (a, b)] searches for a monomorphism of the current
      pattern extended with edge [(a, b)] -- without committing the edge --
      and returns one witness mapping ([-1] for isolated qubits), or [None].
      Callers that keep the pair then commit it with {!add}.

      [budget] (default unbounded) caps the number of search nodes; an
      exhausted search answers [None], so a bounded query errs toward
      refusal — sound for callers that treat refusal as "close the current
      subcircuit", never claiming an embedding that does not exist. *)
end
