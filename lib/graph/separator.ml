(* Bisection by spanning-tree edge removal: removing one tree edge splits the
   tree into two connected subtrees, and tree-connectivity implies
   graph-connectivity of both sides.  We try BFS trees from several roots and
   keep the most balanced split. *)

(* Subtree sizes by an explicit-stack post-order over the children lists —
   children are accumulated into their parent before the parent is popped,
   so no per-root sort by BFS depth is needed. *)
let subtree_sizes parent =
  let n = Array.length parent in
  let size = Array.make n 1 in
  let children = Array.make n [] in
  let roots = ref [] in
  Array.iteri
    (fun v p ->
      if p >= 0 && p <> v then children.(p) <- v :: children.(p)
      else roots := v :: !roots)
    parent;
  let stack = Stack.create () in
  List.iter (fun r -> Stack.push (r, false) stack) !roots;
  while not (Stack.is_empty stack) do
    let v, expanded = Stack.pop stack in
    if expanded then begin
      let p = parent.(v) in
      if p >= 0 && p <> v then size.(p) <- size.(p) + size.(v)
    end
    else begin
      Stack.push (v, true) stack;
      List.iter (fun c -> Stack.push (c, false) stack) children.(v)
    end
  done;
  size

let candidate_roots g =
  let size = Graph.n g in
  if size <= 64 then Qcp_util.Listx.range size
  else begin
    let step = size / 16 in
    List.init 16 (fun i -> i * step)
  end

let bisect g =
  let size = Graph.n g in
  if size < 2 || not (Paths.is_connected g) then None
  else begin
    let best = ref None in
    let consider root =
      let parent = Paths.bfs_parents g root in
      let sizes = subtree_sizes parent in
      for v = 0 to size - 1 do
        if v <> root && parent.(v) >= 0 then begin
          let small = min sizes.(v) (size - sizes.(v)) in
          let better =
            match !best with
            | None -> true
            | Some (best_small, _, _) -> small > best_small
          in
          if better then best := Some (small, v, parent)
        end
      done
    in
    List.iter consider (candidate_roots g);
    match !best with
    | None -> None
    | Some (_, cut_vertex, parent) ->
      (* Subtree of [cut_vertex] in the chosen BFS tree. *)
      let children = Array.make size [] in
      Array.iteri
        (fun v p -> if p >= 0 && p <> v then children.(p) <- v :: children.(p))
        parent;
      let in_subtree = Array.make size false in
      let rec mark v =
        in_subtree.(v) <- true;
        List.iter mark children.(v)
      in
      mark cut_vertex;
      let side_a = List.filter (fun v -> in_subtree.(v)) (Qcp_util.Listx.range size) in
      let side_b = List.filter (fun v -> not in_subtree.(v)) (Qcp_util.Listx.range size) in
      if List.length side_a <= List.length side_b then Some (side_a, side_b)
      else Some (side_b, side_a)
  end

let ratio small large =
  let a = float_of_int (List.length small) in
  let b = float_of_int (List.length large) in
  if a = 0.0 || b = 0.0 then 0.0 else min a b /. max a b

let separability g =
  let rec loop g =
    if Graph.n g < 2 then 1.0
    else
      match bisect g with
      | None -> 0.0
      | Some (side_a, side_b) ->
        let sub_a, _ = Graph.induced g side_a in
        let sub_b, _ = Graph.induced g side_b in
        min (ratio side_a side_b) (min (loop sub_a) (loop sub_b))
  in
  loop g

let theorem1_bound g =
  let k = Graph.max_degree g in
  if k = 0 then 1.0 else 1.0 /. float_of_int k
