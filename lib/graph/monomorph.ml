(* Vertex ordering: process pattern components one after the other, within a
   component in BFS order from a maximum-degree seed, so each vertex after a
   component seed has at least one previously-mapped neighbor.  That keeps the
   candidate set for non-seed vertices restricted to neighbors of an already
   mapped image, which is what makes the search fast on sparse patterns.

   The search itself runs on the bitset kernel: the candidate set of a vertex
   is the bitwise AND of the target neighbor masks of *all* already-mapped
   pattern neighbors, minus the used-vertex mask, iterated in increasing
   vertex order.  That iteration order is exactly the seed enumerator's
   (sorted neighbor array of the first mapped image, filtered), so the result
   list -- mappings and their order -- is unchanged; only dead branches are
   cut earlier, by degree-sequence and neighborhood-degree pruning. *)

(* [Metrics] unqualified is this library's placement-quality module
   (lib/graph/metrics.ml); telemetry goes through the alias. *)
module Telemetry = Qcp_obs.Metrics

let m_nodes = Telemetry.counter Telemetry.global "monomorph.nodes"

let m_ref_degree = Telemetry.counter Telemetry.global "monomorph.refuted.degree"

let m_ref_signature =
  Telemetry.counter Telemetry.global "monomorph.refuted.signature"

let m_ref_degseq =
  Telemetry.counter Telemetry.global "monomorph.refuted.degree_sequence"

let m_enumerations = Telemetry.counter Telemetry.global "monomorph.enumerations"

(* Sort key shared by the ordering heuristics: degree descending, vertex id
   ascending -- the order a stable sort of an ascending list by degree
   produces, which is what the enumeration order contract is pinned to. *)
let by_degree_desc degree a b =
  match Int.compare (degree b) (degree a) with
  | 0 -> Int.compare a b
  | c -> c

(* Insertion sort of [arr.(lo .. hi-1)] by [cmp]; the sorted ranges are tiny
   (bounded by a vertex degree), so this beats allocating slices for
   [Array.sort]. *)
let insertion_sort cmp arr lo hi =
  for i = lo + 1 to hi - 1 do
    let x = arr.(i) in
    let j = ref (i - 1) in
    while !j >= lo && cmp arr.(!j) x > 0 do
      arr.(!j + 1) <- arr.(!j);
      decr j
    done;
    arr.(!j + 1) <- x
  done

let ordering pattern =
  let np = Graph.n pattern in
  let deg = Graph.degrees pattern in
  let order = Array.make (max 1 np) 0 in
  let len = ref 0 in
  let seen = Array.make np false in
  let cmp a b =
    match Int.compare deg.(b) deg.(a) with 0 -> Int.compare a b | c -> c
  in
  let nseeds = ref 0 in
  let seeds = Array.make (max 1 np) 0 in
  for v = 0 to np - 1 do
    if deg.(v) > 0 then begin
      seeds.(!nseeds) <- v;
      incr nseeds
    end
  done;
  insertion_sort cmp seeds 0 !nseeds;
  (* [order] itself is the BFS queue: [head] consumes what the loop below
     appends, and the emission order is exactly the visit order. *)
  let head = ref 0 in
  for s = 0 to !nseeds - 1 do
    let seed = seeds.(s) in
    if not seen.(seed) then begin
      seen.(seed) <- true;
      order.(!len) <- seed;
      incr len;
      while !head < !len do
        let u = order.(!head) in
        incr head;
        let first = !len in
        Array.iter
          (fun v ->
            if not seen.(v) then begin
              seen.(v) <- true;
              order.(!len) <- v;
              incr len
            end)
          (Graph.neighbors pattern u);
        insertion_sort cmp order first !len
      done
    end
  done;
  Array.sub order 0 !len

(* Sorted-degree-sequence refutation via suffix counts: for every degree
   bound d, the number of active pattern vertices of degree >= d must not
   exceed the number of target vertices of degree >= d (those pattern
   vertices occupy that many distinct target vertices).  Equivalent to
   pointwise domination of the descending degree sequences; subsumes the
   max-degree test. *)
let degree_sequence_ok pattern target =
  let sp = Graph.degree_suffix pattern and st = Graph.degree_suffix target in
  let maxd_p = Array.length sp - 2 in
  maxd_p <= Array.length st - 2
  &&
  let ok = ref true in
  for d = 1 to maxd_p do
    if sp.(d) > st.(d) then ok := false
  done;
  !ok

type engine = {
  pattern : Graph.t;
  target : Graph.t;
  nt : int;
  order : int array;
  deg_p : int array;
  deg_t : int array;
  sig_p : int array array;
      (* neighbor-degree signatures (sorted descending): if f(v) = c then
         v's signature must be dominated by a prefix of c's, so candidates
         failing the test head only dead branches -- pruning them cannot
         drop or reorder results *)
  sig_t : int array array;
}

let make_engine ~pattern ~target ~order =
  {
    pattern;
    target;
    nt = Graph.n target;
    order;
    deg_p = Graph.degrees pattern;
    deg_t = Graph.degrees target;
    sig_p = Graph.neighbor_degrees pattern;
    sig_t = Graph.neighbor_degrees target;
  }

(* Same predicate as before, restructured so each refutation can be
   attributed to the rule that fired; the boolean result is unchanged. *)
let compatible e v c =
  if e.deg_t.(c) < e.deg_p.(v) then begin
    if Telemetry.enabled () then Telemetry.incr m_ref_degree;
    false
  end
  else begin
    let ps = e.sig_p.(v) and ts = e.sig_t.(c) in
    let ok = ref true in
    for i = 0 to Array.length ps - 1 do
      if ps.(i) > ts.(i) then ok := false
    done;
    if (not !ok) && Telemetry.enabled () then Telemetry.incr m_ref_signature;
    !ok
  end

(* Per-search mutable state; one per domain when fanning out.  The
   single-word search path tracks the used set as a plain int argument, so
   [used] and [cand] stay empty there. *)
type state = {
  mapping : int array;
  used : int array; (* bitset over target vertices *)
  cand : int array array; (* per-depth candidate-mask scratch *)
  limit : int;
  mutable results : int array list; (* reversed *)
  mutable count : int;
}

let small e = Graph.words e.target = 1

let make_state e limit =
  let multiword = not (small e) in
  {
    mapping = Array.make (Graph.n e.pattern) (-1);
    used = (if multiword then Graph.mask_make e.nt else [||]);
    cand =
      (if multiword then
         Array.init
           (max 1 (Array.length e.order))
           (fun _ -> Graph.mask_make e.nt)
       else [||]);
    limit;
    results = [];
    count = 0;
  }

let clear_state st =
  st.results <- [];
  st.count <- 0;
  Array.fill st.mapping 0 (Array.length st.mapping) (-1);
  Array.fill st.used 0 (Array.length st.used) 0

exception Limit_reached

let record st =
  st.results <- Array.copy st.mapping :: st.results;
  st.count <- st.count + 1;
  if st.count >= st.limit then raise Limit_reached

let rec extend e st step =
  if step >= Array.length e.order then record st
  else begin
    let v = e.order.(step) in
    let try_candidate c =
      if Telemetry.enabled () then Telemetry.incr m_nodes;
      st.mapping.(v) <- c;
      Graph.mask_set st.used c;
      extend e st (step + 1);
      Graph.mask_clear st.used c;
      st.mapping.(v) <- -1
    in
    let mask = st.cand.(step) in
    let constrained = ref false in
    Array.iter
      (fun u ->
        let image = st.mapping.(u) in
        if image >= 0 then begin
          let nm = Graph.neighbor_mask e.target image in
          if !constrained then Graph.mask_inter_into ~into:mask nm
          else begin
            Array.blit nm 0 mask 0 (Array.length nm);
            constrained := true
          end
        end)
      (Graph.neighbors e.pattern v);
    if !constrained then begin
      Graph.mask_diff_into ~into:mask st.used;
      Graph.iter_mask (fun c -> if compatible e v c then try_candidate c) mask
    end
    else
      for c = 0 to e.nt - 1 do
        if (not (Graph.mask_mem st.used c)) && compatible e v c then
          try_candidate c
      done
  end

(* Same search with every target vertex set packed in one int: candidate
   words are intersected and popped in ascending order (identical
   enumeration order), and the used set threads through the recursion as an
   immutable argument — the search allocates nothing but results. *)
let rec extend_small e st step used =
  if step >= Array.length e.order then record st
  else begin
    let v = e.order.(step) in
    let pn = Graph.neighbors e.pattern v in
    let cw = ref 0 and constrained = ref false in
    for i = 0 to Array.length pn - 1 do
      let image = st.mapping.(pn.(i)) in
      if image >= 0 then begin
        let w = (Graph.neighbor_mask e.target image).(0) in
        cw := (if !constrained then !cw land w else w);
        constrained := true
      end
    done;
    if !constrained then begin
      let cand = ref (!cw land lnot used) in
      while !cand <> 0 do
        let b = !cand land (- !cand) in
        cand := !cand lxor b;
        let c = Graph.bit_index b in
        if compatible e v c then begin
          if Telemetry.enabled () then Telemetry.incr m_nodes;
          st.mapping.(v) <- c;
          extend_small e st (step + 1) (used lor b);
          st.mapping.(v) <- -1
        end
      done
    end
    else
      for c = 0 to e.nt - 1 do
        if used land (1 lsl c) = 0 && compatible e v c then begin
          if Telemetry.enabled () then Telemetry.incr m_nodes;
          st.mapping.(v) <- c;
          extend_small e st (step + 1) (used lor (1 lsl c));
          st.mapping.(v) <- -1
        end
      done
  end

let run_sequential e limit =
  let st = make_state e limit in
  (try if small e then extend_small e st 0 0 else extend e st 0
   with Limit_reached -> ());
  List.rev st.results

(* Candidate images of the first ordered vertex, ascending. *)
let compute_firsts e =
  let v0 = e.order.(0) in
  let firsts = ref [] in
  for c = e.nt - 1 downto 0 do
    if compatible e v0 c then firsts := c :: !firsts
  done;
  Array.of_list !firsts

(* Sparse candidate generation: keep the [cap] first-vertex images whose
   target degree is closest to the pattern vertex's (ties toward the
   smallest index), restoring ascending order afterwards so the surviving
   enumeration is a subsequence of the uncapped one. *)
let cap_firsts e cap firsts =
  if Array.length firsts <= cap then firsts
  else begin
    let v0 = e.order.(0) in
    let keyed = Array.map (fun c -> (abs (e.deg_t.(c) - e.deg_p.(v0)), c)) firsts in
    Array.sort
      (fun (da, a) (db, b) ->
        match Int.compare da db with 0 -> Int.compare a b | c -> c)
      keyed;
    let kept = Array.init cap (fun i -> snd keyed.(i)) in
    Array.sort Int.compare kept;
    kept
  end

(* Pool fan-out over the first ordered vertex's candidate images: each
   first-vertex choice is one pool slot enumerated completely (capped at
   [limit]); slot-per-candidate collection plus an ascending merge
   reproduces the sequential result list exactly, truncated to [limit].
   Search state is per participating worker — the pool guarantees a worker
   id never runs two slots concurrently — allocated lazily on the worker's
   first slot and reset between slots (a previous slot that hit the limit
   left [mapping] and [used] mid-search). *)
let run_parallel e limit jobs firsts =
  let v0 = e.order.(0) in
  let total = Array.length firsts in
  let slots = Array.make total [] in
  let jobs = min jobs total in
  let states = Array.make (max 1 jobs) None in
  Qcp_util.Task_pool.parallel_for
    (Qcp_util.Task_pool.get ())
    ~jobs
    ~body:(fun ~worker i ->
      let st =
        match states.(worker) with
        | Some st ->
          clear_state st;
          st
        | None ->
          let st = make_state e limit in
          states.(worker) <- Some st;
          st
      in
      let c = firsts.(i) in
      if Telemetry.enabled () then Telemetry.incr m_nodes;
      st.mapping.(v0) <- c;
      (try
         if small e then extend_small e st 1 (1 lsl c)
         else begin
           Graph.mask_set st.used c;
           extend e st 1
         end
       with Limit_reached -> ());
      slots.(i) <- List.rev st.results)
    total;
  Qcp_util.Listx.take limit (List.concat (Array.to_list slots))

let enumerate ?(limit = 100) ?(jobs = 1) ?root_cap ~pattern ~target () =
  if limit <= 0 then []
  else begin
    if Telemetry.enabled () then Telemetry.incr m_enumerations;
    let run () =
      let order = ordering pattern in
      if
        Graph.max_degree pattern > Graph.max_degree target
        || not (degree_sequence_ok pattern target)
      then begin
        if Telemetry.enabled () then Telemetry.incr m_ref_degseq;
        []
      end
      else begin
        let e = make_engine ~pattern ~target ~order in
        match root_cap with
        | Some cap when Array.length order > 0 ->
          let firsts = cap_firsts e (max 1 cap) (compute_firsts e) in
          if Array.length firsts = 0 then []
          else run_parallel e limit (max 1 jobs) firsts
        | _ ->
          if jobs > 1 && limit > 1 && Array.length order > 0 then
            run_parallel e limit jobs (compute_firsts e)
          else run_sequential e limit
      end
    in
    Qcp_obs.Trace.with_span ~cat:"graph" "monomorph/enumerate" run
  end

let exists ~pattern ~target = enumerate ~limit:1 ~pattern ~target () <> []

let check ~pattern ~target mapping =
  Array.length mapping = Graph.n pattern
  && begin
       let used = Array.make (Graph.n target) false in
       let injective = ref true in
       Array.iter
         (fun image ->
           if image >= 0 then begin
             if image >= Graph.n target || used.(image) then injective := false
             else used.(image) <- true
           end)
         mapping;
       !injective
     end
  && List.for_all
       (fun (u, v) ->
         mapping.(u) >= 0 && mapping.(v) >= 0
         && Graph.mem_edge target mapping.(u) mapping.(v))
       (Graph.edges pattern)

(* ------------------------------------------------------------------ *)
(* Incremental existence oracle                                        *)
(* ------------------------------------------------------------------ *)

module Incremental = struct
  (* The workspace grows its pattern one interaction pair at a time and only
     ever asks "does the grown pattern still embed?".  Rebuilding a Graph.t
     per query (sort + dedup + adjacency construction) dominated that loop;
     here the pattern lives as mutable degree counters and adjacency bitsets
     over the qubit indices, and a query is a plain existence search over
     that structure.  Existence is order-independent, so the search is free
     to use any sound ordering; answers always match the full enumerator. *)

  type t = {
    qubits : int;
    target : Graph.t;
    nt : int;
    deg_t : int array;
    max_deg_t : int;
    pmask : int array array; (* pattern adjacency bitsets, over qubits *)
    pdeg : int array;
    (* per-query scratch, allocated once *)
    mapping : int array;
    used : int array;
    cand : int array array;
    order : int array;
    seen : bool array;
  }

  let create ~qubits ~target =
    {
      qubits;
      target;
      nt = Graph.n target;
      deg_t = Array.init (Graph.n target) (Graph.degree target);
      max_deg_t = Graph.max_degree target;
      pmask = Array.init qubits (fun _ -> Graph.mask_make qubits);
      pdeg = Array.make qubits 0;
      mapping = Array.make qubits (-1);
      used = Graph.mask_make (Graph.n target);
      cand = Array.init (max 1 qubits) (fun _ -> Graph.mask_make (Graph.n target));
      order = Array.make (max 1 qubits) 0;
      seen = Array.make qubits false;
    }

  let reset inc =
    Array.iter (fun m -> Array.fill m 0 (Array.length m) 0) inc.pmask;
    Array.fill inc.pdeg 0 inc.qubits 0

  let mem inc a b = Graph.mask_mem inc.pmask.(a) b

  let add inc (a, b) =
    if a <> b && not (mem inc a b) then begin
      Graph.mask_set inc.pmask.(a) b;
      Graph.mask_set inc.pmask.(b) a;
      inc.pdeg.(a) <- inc.pdeg.(a) + 1;
      inc.pdeg.(b) <- inc.pdeg.(b) + 1
    end

  let remove inc (a, b) =
    if a <> b && mem inc a b then begin
      Graph.mask_clear inc.pmask.(a) b;
      Graph.mask_clear inc.pmask.(b) a;
      inc.pdeg.(a) <- inc.pdeg.(a) - 1;
      inc.pdeg.(b) <- inc.pdeg.(b) - 1
    end

  let degree inc q = inc.pdeg.(q)

  (* BFS component order from maximum-degree seeds, as in {!ordering};
     neighbor ties resolve in ascending qubit order (existence does not
     depend on it). *)
  let build_order inc =
    let len = ref 0 in
    Array.fill inc.seen 0 inc.qubits false;
    let cmp = by_degree_desc (fun q -> inc.pdeg.(q)) in
    let seeds = ref [] in
    for q = inc.qubits - 1 downto 0 do
      if inc.pdeg.(q) > 0 then seeds := q :: !seeds
    done;
    let seeds = Array.of_list !seeds in
    Array.sort cmp seeds;
    let queue = Queue.create () in
    Array.iter
      (fun seed ->
        if not inc.seen.(seed) then begin
          inc.seen.(seed) <- true;
          Queue.add seed queue;
          while not (Queue.is_empty queue) do
            let u = Queue.pop queue in
            inc.order.(!len) <- u;
            incr len;
            Graph.iter_mask
              (fun v ->
                if not inc.seen.(v) then begin
                  inc.seen.(v) <- true;
                  Queue.add v queue
                end)
              inc.pmask.(u)
          done
        end)
      seeds;
    !len

  exception Found

  exception Exhausted

  let search ?budget inc =
    let budget = match budget with None -> max_int | Some b -> b in
    let order_len = build_order inc in
    (* Quick refutations: an active qubit needs a target vertex of at least
       its degree; active qubits need distinct target vertices. *)
    let feasible = ref (order_len <= inc.nt) in
    for i = 0 to order_len - 1 do
      if inc.pdeg.(inc.order.(i)) > inc.max_deg_t then feasible := false
    done;
    if not !feasible then None
    else begin
      Array.fill inc.mapping 0 inc.qubits (-1);
      Array.fill inc.used 0 (Array.length inc.used) 0;
      let witness = ref None in
      let nodes = ref 0 in
      let rec extend step =
        if step >= order_len then begin
          witness := Some (Array.copy inc.mapping);
          raise Found
        end
        else begin
          let v = inc.order.(step) in
          let try_candidate c =
            incr nodes;
            if !nodes > budget then raise Exhausted;
            inc.mapping.(v) <- c;
            Graph.mask_set inc.used c;
            extend (step + 1);
            Graph.mask_clear inc.used c;
            inc.mapping.(v) <- -1
          in
          let deg_ok c = inc.deg_t.(c) >= inc.pdeg.(v) in
          let mask = inc.cand.(step) in
          let constrained = ref false in
          Graph.iter_mask
            (fun u ->
              let image = inc.mapping.(u) in
              if image >= 0 then begin
                let nm = Graph.neighbor_mask inc.target image in
                if !constrained then Graph.mask_inter_into ~into:mask nm
                else begin
                  Array.blit nm 0 mask 0 (Array.length nm);
                  constrained := true
                end
              end)
            inc.pmask.(v);
          if !constrained then begin
            Graph.mask_diff_into ~into:mask inc.used;
            Graph.iter_mask (fun c -> if deg_ok c then try_candidate c) mask
          end
          else
            for c = 0 to inc.nt - 1 do
              if (not (Graph.mask_mem inc.used c)) && deg_ok c then
                try_candidate c
            done
        end
      in
      (try extend 0 with Found -> () | Exhausted -> ());
      !witness
    end

  let embeds_with ?budget inc ((a, b) as pair) =
    let fresh = not (mem inc a b) in
    if fresh then add inc pair;
    let result = search ?budget inc in
    if fresh then remove inc pair;
    result
end
