(** Standard graph families used as physical-environment topologies and as
    test fixtures. *)

val path_graph : int -> Graph.t
(** The chain nearest-neighbor architecture on [n] vertices. *)

val cycle_graph : int -> Graph.t

val complete : int -> Graph.t

val star : int -> Graph.t
(** Vertex 0 joined to every other vertex. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]: 2D lattice, vertex [r*cols + c]. *)

val heavy_hex : rows:int -> cols:int -> Graph.t
(** Heavy-hex-style lattice: [rows] horizontal chains of [cols] qubits
    (row-major, vertex [r*cols + c]) joined by degree-2 bridge qubits
    between consecutive rows at every fourth column, offset by two on odd
    rows.  Bridge qubits are numbered after the chain qubits in
    (row, column) order.  Sparser than {!grid} — max degree 3 on chains —
    matching the topology of large superconducting devices. *)

val petersen : unit -> Graph.t
(** The Petersen graph — 3-regular, connected, famously non-Hamiltonian;
    a fixture for the NP-completeness experiment. *)

val binary_tree : int -> Graph.t
(** Complete-ish binary tree on [n] vertices (heap numbering). *)

val random_tree : Qcp_util.Rng.t -> int -> Graph.t
(** Uniform random recursive tree. *)

val random_connected : Qcp_util.Rng.t -> n:int -> extra_edges:int -> Graph.t
(** Random tree plus [extra_edges] additional distinct random edges. *)
