let path_graph n = Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle_graph n =
  if n < 3 then invalid_arg "Generators.cycle_graph: need at least 3 vertices";
  Graph.of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let complete n =
  Graph.of_edges n (Qcp_util.Listx.pairs (Qcp_util.Listx.range n))

let star n = Graph.of_edges n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let grid rows cols =
  let idx r c = (r * cols) + c in
  let horizontal =
    List.concat_map
      (fun r -> List.init (cols - 1) (fun c -> (idx r c, idx r (c + 1))))
      (Qcp_util.Listx.range rows)
  in
  let vertical =
    List.concat_map
      (fun r -> List.init cols (fun c -> (idx r c, idx (r + 1) c)))
      (Qcp_util.Listx.range (rows - 1))
  in
  Graph.of_edges (rows * cols) (horizontal @ vertical)

let heavy_hex ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Generators.heavy_hex: empty lattice";
  let idx r c = (r * cols) + c in
  let chain_edges =
    List.concat_map
      (fun r -> List.init (cols - 1) (fun c -> (idx r c, idx r (c + 1))))
      (Qcp_util.Listx.range rows)
  in
  (* Bridge qubits sit between consecutive rows at every fourth column,
     offset by two on odd rows — the staggered connectivity of IBM's
     heavy-hex lattices.  Chain qubits are row-major [0 .. rows*cols - 1];
     bridges are appended in (row, column) order. *)
  let nchain = rows * cols in
  let next = ref nchain in
  let bridge_edges = ref [] in
  for r = 0 to rows - 2 do
    for c = 0 to cols - 1 do
      let hit = if r mod 2 = 0 then c mod 4 = 0 else c mod 4 = 2 in
      if hit then begin
        let b = !next in
        incr next;
        bridge_edges := (b, idx (r + 1) c) :: (b, idx r c) :: !bridge_edges
      end
    done
  done;
  Graph.of_edges !next (chain_edges @ List.rev !bridge_edges)

let petersen () =
  let outer = List.init 5 (fun i -> (i, (i + 1) mod 5)) in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  let inner = List.init 5 (fun i -> (5 + i, 5 + ((i + 2) mod 5))) in
  Graph.of_edges 10 (outer @ spokes @ inner)

let binary_tree n =
  Graph.of_edges n
    (List.filter_map
       (fun i -> if i = 0 then None else Some ((i - 1) / 2, i))
       (Qcp_util.Listx.range n))

let random_tree rng n =
  Graph.of_edges n
    (List.init (max 0 (n - 1)) (fun i ->
         let child = i + 1 in
         (Qcp_util.Rng.int rng child, child)))

let random_connected rng ~n ~extra_edges =
  let tree = random_tree rng n in
  let extra = ref [] in
  let attempts = ref 0 in
  while List.length !extra < extra_edges && !attempts < extra_edges * 20 do
    incr attempts;
    let u = Qcp_util.Rng.int rng n in
    let v = Qcp_util.Rng.int rng n in
    if u <> v && (not (Graph.mem_edge tree u v)) && not (List.mem (min u v, max u v) !extra)
    then extra := (min u v, max u v) :: !extra
  done;
  Graph.add_edges tree !extra
