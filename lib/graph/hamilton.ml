(* Backtracking search on the bitset kernel, with two sound prunings run at
   every interior node:

   - connectivity: the remaining route is a Hamiltonian path of the subgraph
     induced on {current} U unvisited, so if some unvisited vertex is
     unreachable from the current endpoint through unvisited vertices the
     branch is dead;
   - forced endpoints: an unvisited vertex with fewer than two neighbors in
     {current} U unvisited must be the final vertex of the route (interior
     vertices need both a predecessor and a successor in the set), so two
     such vertices kill the branch, as does one that is not adjacent to the
     start vertex when searching for a closed route.

   Both rules only discard branches that cannot complete; surviving branches
   are explored in the seed order (sorted neighbor arrays, ascending), so
   the route found is identical to the unpruned search's. *)

let search g ~closed =
  let size = Graph.n g in
  if size = 0 then None
  else if size = 1 then Some [ 0 ]
  else begin
    let degree_below_two = ref false in
    for v = 0 to size - 1 do
      if Graph.degree g v < 2 then degree_below_two := true
    done;
    if closed && !degree_below_two then None
    else begin
      let free = Graph.mask_make size in
      for v = 0 to size - 1 do
        Graph.mask_set free v
      done;
      let route = ref [] in
      (* Start from a minimum-degree vertex to shrink the branching factor
         (first minimum, matching the seed's [min_by] tie-breaking). *)
      let start = ref 0 in
      for v = size - 1 downto 0 do
        if Graph.degree g v <= Graph.degree g !start then start := v
      done;
      let start = !start in
      let reach = Graph.mask_make size in
      let stack = Array.make size 0 in
      (* Both prunings in one sweep over the free set. *)
      let can_complete v =
        Array.fill reach 0 (Array.length reach) 0;
        Graph.mask_set reach v;
        stack.(0) <- v;
        let top = ref 1 in
        while !top > 0 do
          decr top;
          let u = stack.(!top) in
          Graph.iter_mask
            (fun w ->
              if Graph.mask_mem free w && not (Graph.mask_mem reach w) then begin
                Graph.mask_set reach w;
                stack.(!top) <- w;
                incr top
              end)
            (Graph.neighbor_mask g u)
        done;
        let connected = ref true in
        let forced = ref 0 in
        let forced_ok = ref true in
        Graph.iter_mask
          (fun u ->
            if not (Graph.mask_mem reach u) then connected := false
            else begin
              let nm = Graph.neighbor_mask g u in
              let avail = ref (if Graph.mask_mem nm v then 1 else 0) in
              for w = 0 to Array.length nm - 1 do
                let m = ref (nm.(w) land free.(w)) in
                while !m <> 0 do
                  m := !m land (!m - 1);
                  incr avail
                done
              done;
              if !avail < 2 then begin
                incr forced;
                if closed && not (Graph.mem_edge g u start) then
                  forced_ok := false
              end
            end)
          free;
        !connected && !forced <= 1 && !forced_ok
      in
      let rec extend v depth =
        Graph.mask_clear free v;
        route := v :: !route;
        let ok =
          if depth = size then (not closed) || Graph.mem_edge g v start
          else
            can_complete v
            && Array.exists
                 (fun w -> Graph.mask_mem free w && extend w (depth + 1))
                 (Graph.neighbors g v)
        in
        if not ok then begin
          Graph.mask_set free v;
          route := List.tl !route
        end;
        ok
      in
      if extend start 1 then Some (List.rev !route) else None
    end
  end

let cycle g = search g ~closed:true

let path g = search g ~closed:false

let is_cycle g route =
  let size = Graph.n g in
  List.length route = size
  && List.sort_uniq Int.compare route = Graph.vertices g
  && size >= 3
  &&
  let arr = Array.of_list route in
  let ok = ref true in
  for i = 0 to size - 1 do
    if not (Graph.mem_edge g arr.(i) arr.((i + 1) mod size)) then ok := false
  done;
  !ok
