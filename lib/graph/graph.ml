(* Adjacency is stored twice: sorted neighbor arrays (stable iteration order
   for every search in the library) and packed bitsets of [word_bits]-bit
   integer words (O(1) membership, O(n/word_bits) candidate-set
   intersection).  Both are built once in [of_edges]; graphs are immutable
   afterwards, so the two views never diverge. *)

type t = {
  size : int;
  adj : int array array; (* sorted neighbor lists *)
  masks : int array array; (* bitset view of [adj]: bit v of masks.(u) *)
  words : int; (* length of each mask *)
  degrees : int array; (* degrees.(v) = Array.length adj.(v) *)
  edge_list : (int * int) list; (* u < v, sorted, deduplicated *)
  nbr_degrees : int array array option Atomic.t;
      (* memoized neighbor-degree signatures (sorted descending), computed
         on first demand; graphs are immutable so the memo never stales.
         Atomic so a table built on one domain publishes safely to others
         (racing domains compute equal tables; last write wins) *)
  deg_suffix : int array option Atomic.t;
      (* memoized degree suffix counts: deg_suffix.(d) = #vertices with
         degree >= d, for d in [0, max_degree + 1]; atomic as above *)
}

let word_bits = 63 (* per OCaml native int *)

let mask_words n = (n + word_bits - 1) / word_bits

let mask_make n = Array.make (max 1 (mask_words n)) 0

let mask_set mask v =
  mask.(v / word_bits) <- mask.(v / word_bits) lor (1 lsl (v mod word_bits))

let mask_clear mask v =
  mask.(v / word_bits) <- mask.(v / word_bits) land lnot (1 lsl (v mod word_bits))

let mask_mem mask v = mask.(v / word_bits) land (1 lsl (v mod word_bits)) <> 0

let mask_inter_into ~into src =
  for w = 0 to Array.length into - 1 do
    into.(w) <- into.(w) land src.(w)
  done

let mask_diff_into ~into src =
  for w = 0 to Array.length into - 1 do
    into.(w) <- into.(w) land lnot src.(w)
  done

(* Index of the only set bit of [b] (a power of two), by binary search on
   shifts -- OCaml ints lack a hardware count-trailing-zeros primitive.
   Exposed so single-word searches can pop candidate bits without the
   [iter_mask] closure. *)
let bit_index b =
  let b = ref b and i = ref 0 in
  if !b land 0x7FFFFFFF00000000 <> 0 then begin b := !b lsr 32; i := !i + 32 end;
  if !b land 0xFFFF0000 <> 0 then begin b := !b lsr 16; i := !i + 16 end;
  if !b land 0xFF00 <> 0 then begin b := !b lsr 8; i := !i + 8 end;
  if !b land 0xF0 <> 0 then begin b := !b lsr 4; i := !i + 4 end;
  if !b land 0xC <> 0 then begin b := !b lsr 2; i := !i + 2 end;
  if !b land 0x2 <> 0 then incr i;
  !i

let iter_mask f mask =
  for w = 0 to Array.length mask - 1 do
    let m = ref mask.(w) in
    let base = w * word_bits in
    while !m <> 0 do
      let b = !m land (- !m) in
      f (base + bit_index b);
      m := !m lxor b
    done
  done

let fold_mask f mask init =
  let acc = ref init in
  iter_mask (fun v -> acc := f v !acc) mask;
  !acc

let mask_inter_popcount a b =
  let total = ref 0 in
  for w = 0 to Array.length a - 1 do
    let m = ref (a.(w) land b.(w)) in
    while !m <> 0 do
      m := !m land (!m - 1);
      incr total
    done
  done;
  !total

let mask_popcount mask =
  let total = ref 0 in
  for w = 0 to Array.length mask - 1 do
    let m = ref mask.(w) in
    while !m <> 0 do
      m := !m land (!m - 1);
      incr total
    done
  done;
  !total

let mask_is_empty mask = Array.for_all (fun w -> w = 0) mask

let check_vertex size v =
  if v < 0 || v >= size then invalid_arg (Printf.sprintf "Graph: vertex %d out of range [0,%d)" v size)

let compare_edge (u1, v1) (u2, v2) =
  match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c

let canonical size pairs =
  let normalized =
    List.filter_map
      (fun (u, v) ->
        check_vertex size u;
        check_vertex size v;
        if u = v then None else Some (min u v, max u v))
      pairs
  in
  List.sort_uniq compare_edge normalized

let of_edges size pairs =
  if size < 0 then invalid_arg "Graph.of_edges: negative size";
  let edge_list = canonical size pairs in
  let counts = Array.make size 0 in
  List.iter
    (fun (u, v) ->
      counts.(u) <- counts.(u) + 1;
      counts.(v) <- counts.(v) + 1)
    edge_list;
  let adj = Array.init size (fun v -> Array.make counts.(v) 0) in
  let masks = Array.init size (fun _ -> mask_make size) in
  let fill = Array.make size 0 in
  List.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1;
      mask_set masks.(u) v;
      mask_set masks.(v) u)
    edge_list;
  (* The lexicographic sweep over [edge_list] emits every row's entries in
     increasing order already (first the smaller endpoints, then the larger
     ones); the sort keeps that invariant explicit and cheap. *)
  Array.iter (fun row -> Array.sort Int.compare row) adj;
  {
    size;
    adj;
    masks;
    words = max 1 (mask_words size);
    degrees = counts;
    edge_list;
    nbr_degrees = Atomic.make None;
    deg_suffix = Atomic.make None;
  }

let n t = t.size

let words t = t.words

let edge_count t = List.length t.edge_list

let edges t = t.edge_list

let neighbors t v =
  check_vertex t.size v;
  t.adj.(v)

let neighbor_mask t v =
  check_vertex t.size v;
  t.masks.(v)

let degree t v =
  check_vertex t.size v;
  t.degrees.(v)

let degrees t = t.degrees

let max_degree t =
  Array.fold_left (fun acc d -> max acc d) 0 t.degrees

let neighbor_degrees t =
  match Atomic.get t.nbr_degrees with
  | Some table -> table
  | None ->
    let table =
      Array.map
        (fun row ->
          let s = Array.map (fun v -> t.degrees.(v)) row in
          Array.sort (fun a b -> Int.compare b a) s;
          s)
        t.adj
    in
    Atomic.set t.nbr_degrees (Some table);
    table

let degree_suffix t =
  match Atomic.get t.deg_suffix with
  | Some s -> s
  | None ->
    let maxd = max_degree t in
    let s = Array.make (maxd + 2) 0 in
    Array.iter (fun d -> s.(d) <- s.(d) + 1) t.degrees;
    for d = maxd - 1 downto 0 do
      s.(d) <- s.(d) + s.(d + 1)
    done;
    Atomic.set t.deg_suffix (Some s);
    s

let mem_edge t u v =
  check_vertex t.size u;
  check_vertex t.size v;
  mask_mem t.masks.(u) v

let is_empty t = t.edge_list = []

let vertices t = List.init t.size (fun i -> i)

let induced t vs =
  let back = Array.of_list vs in
  let fwd = Array.make t.size (-1) in
  Array.iteri (fun i v -> check_vertex t.size v; fwd.(v) <- i) back;
  let sub_edges =
    List.filter_map
      (fun (u, v) ->
        if fwd.(u) >= 0 && fwd.(v) >= 0 then Some (fwd.(u), fwd.(v)) else None)
      t.edge_list
  in
  (of_edges (Array.length back) sub_edges, back)

let add_edges t extra = of_edges t.size (extra @ t.edge_list)

let leaves t =
  List.filter (fun v -> Array.length t.adj.(v) = 1) (vertices t)

let equal a b = a.size = b.size && a.edge_list = b.edge_list

let pp ppf t =
  Format.fprintf ppf "graph(n=%d, m=%d:" t.size (edge_count t);
  List.iter (fun (u, v) -> Format.fprintf ppf " %d-%d" u v) t.edge_list;
  Format.fprintf ppf ")"
