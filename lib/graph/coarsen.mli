(** Heavy-edge-matching coarsening hierarchy over the packed-bitset graph
    kernel, in the multilevel partitioning tradition (Karypis-Kumar style
    coarsen / place / refine).

    The placer uses it to keep subgraph-monomorphism enumeration off the
    O(m!) cliff on 1000-vertex environments: a placement stage first picks
    a small connected *region* of the environment at the coarsest level
    (seeded near the previous stage's placement), refines that choice
    level by level down to concrete vertices, and only enumerates
    monomorphisms on the induced region subgraph.

    Every step is deterministic: vertices are visited in ascending order,
    matching ties resolve to the heaviest edge then the smallest neighbor
    index, and region growth resolves ties by seed affinity, connection
    weight, then vertex index — so placements built on top of a hierarchy
    are reproducible at any parallelism level. *)

type t

val build : ?weight:(int -> int -> float) -> ?coarsest:int -> Graph.t -> t
(** [build ?weight ?coarsest g] coarsens [g] by repeated heavy-edge
    matching until at most [coarsest] clusters remain (default 32) or no
    matching makes progress.  [weight u v] (default [1.0]) is the
    affinity of edge [(u, v)] — heavier edges are contracted first, so
    with [1 / delay] weights clusters group tightly-coupled vertices;
    merged parallel edges add their weights. *)

val levels : t -> int
(** Number of levels including the base graph (at least 1). *)

val coarsest_size : t -> int
(** Vertex count of the coarsest level. *)

val select_region : t -> seeds:int list -> capacity:int -> int list
(** [select_region t ~seeds ~capacity] is an ascending list of at least
    [min capacity (Graph.n base)] base vertices forming a connected
    neighborhood: grown greedily at the coarsest level from the clusters
    holding the most [seeds] (base vertex ids; an empty list seeds at the
    largest cluster), then re-grown among the chosen clusters' children
    at each finer level.  Deterministic in its arguments. *)
