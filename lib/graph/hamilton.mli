(** Hamiltonian cycle and path search by backtracking on the bitset graph
    kernel.

    Used by the NP-completeness experiment (paper Section 4): the reduction
    maps Hamiltonian-cycle instances to placement instances, and this module
    provides the ground truth on small graphs.

    Two sound prunings run at every interior node: the remaining route must
    reach every unvisited vertex through unvisited vertices (connectivity),
    and at most one unvisited vertex may have fewer than two neighbors left
    in {current} U unvisited — such a vertex is a forced final vertex, and
    for a closed route it must also be adjacent to the start.  Pruned
    branches can never complete, and surviving branches are explored in
    sorted neighbor order, so the returned route is exactly the one the
    unpruned backtracking search finds. *)

val cycle : Graph.t -> int list option
(** A Hamiltonian cycle as a vertex list (start vertex not repeated at the
    end), or [None].  Exponential worst case; intended for small graphs. *)

val path : Graph.t -> int list option
(** A Hamiltonian path, or [None]. *)

val is_cycle : Graph.t -> int list -> bool
(** Validate a claimed Hamiltonian cycle. *)
