(** Simple undirected graphs over vertices [0 .. n-1].

    The library's physical-environment adjacency graphs ("fast interactions"),
    circuit interaction graphs and NP-completeness constructions are all
    instances of this type.  Graphs are immutable once built.

    Adjacency is kept in two synchronized views: sorted neighbor arrays
    (deterministic iteration order) and packed bitsets of 63-bit integer
    words (O(1) edge tests and bitwise candidate-set intersection).  The
    [mask_*] helpers below operate on plain [int array] bitsets so search
    code can maintain its own vertex sets (visited, used, frontier) in the
    same representation and intersect them with {!neighbor_mask} rows. *)

type t

val of_edges : int -> (int * int) list -> t
(** [of_edges n edges] builds a graph with [n] vertices.  Self-loops are
    dropped; duplicate edges are kept once.  Raises [Invalid_argument] if an
    endpoint is out of range. *)

val n : t -> int
(** Number of vertices. *)

val words : t -> int
(** Number of integer words per adjacency bitset (= [mask_words (n t)],
    at least 1). *)

val edge_count : t -> int

val edges : t -> (int * int) list
(** Every edge once, with [u < v], sorted. *)

val neighbors : t -> int -> int array
(** Sorted neighbor array (do not mutate). *)

val neighbor_mask : t -> int -> int array
(** The neighbor set of a vertex as a bitset (do not mutate).  Bit [v] of
    word [v / 63] is set iff the edge exists. *)

val degree : t -> int -> int

val degrees : t -> int array
(** The full degree array, indexed by vertex (do not mutate). *)

val max_degree : t -> int

val neighbor_degrees : t -> int array array
(** Per-vertex neighbor-degree signatures: [neighbor_degrees g].(v) is the
    degrees of v's neighbors sorted descending (do not mutate).  Computed
    once per graph on first demand and memoized -- this is the
    monomorphism engine's neighborhood pruning table. *)

val degree_suffix : t -> int array
(** Degree suffix counts: [(degree_suffix g).(d)] is the number of vertices
    of degree at least [d], for [d] in [0 .. max_degree g + 1] (the last
    entry is 0).  Computed once per graph and memoized -- this backs the
    monomorphism engine's degree-sequence refutation. *)

val mem_edge : t -> int -> int -> bool
(** Edge test in O(1) (bitset lookup). *)

val is_empty : t -> bool
(** True when the graph has no edges. *)

val vertices : t -> int list

val induced : t -> int list -> t * int array
(** [induced g vs] is the subgraph on vertex list [vs] (in the given order)
    together with the array mapping new indices back to old vertex ids. *)

val add_edges : t -> (int * int) list -> t
(** A new graph with extra edges. *)

val leaves : t -> int list
(** Vertices of degree exactly 1. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Bitset scratch operations}

    Free functions over plain [int array] bitsets, compatible with
    {!neighbor_mask}.  All masks over the same vertex count have the same
    length, so the binary operations assume equal lengths. *)

val mask_words : int -> int
(** Words needed for a bitset over [n] vertices. *)

val mask_make : int -> int array
(** A fresh all-zero bitset sized for [n] vertices (at least one word). *)

val mask_set : int array -> int -> unit

val mask_clear : int array -> int -> unit

val mask_mem : int array -> int -> bool

val mask_inter_into : into:int array -> int array -> unit
(** [mask_inter_into ~into src] is [into := into AND src]. *)

val mask_diff_into : into:int array -> int array -> unit
(** [mask_diff_into ~into src] is [into := into AND NOT src]. *)

val mask_popcount : int array -> int

val mask_inter_popcount : int array -> int array -> int
(** [mask_inter_popcount a b] is [mask_popcount (a AND b)], without
    materializing the intersection. *)

val mask_is_empty : int array -> bool

val bit_index : int -> int
(** Index of the only set bit of a one-bit word (e.g. [w land (-w)]), for
    manual bit-popping loops over single-word masks. *)

val iter_mask : (int -> unit) -> int array -> unit
(** Iterate the set bits in increasing vertex order — the same order as the
    sorted {!neighbors} rows, which is what keeps bitset-driven searches
    enumeration-order-identical to array-driven ones. *)

val fold_mask : (int -> 'a -> 'a) -> int array -> 'a -> 'a
(** Fold over set bits in increasing vertex order. *)
