(* Multilevel heavy-edge matching.  Each level stores its cluster graph,
   the projection of every *base* vertex into that level's clusters, the
   cluster capacities (base vertices contained) and the merged edge
   weights.  All traversal is in ascending index order so the hierarchy —
   and everything the placer builds on it — is deterministic. *)

type level = {
  lv_graph : Graph.t;
  lv_project : int array; (* base vertex -> cluster id at this level *)
  lv_capacity : int array; (* cluster id -> number of base vertices *)
  lv_rep : int array; (* cluster id -> smallest base vertex inside *)
  lv_weight : (int, float) Hashtbl.t; (* key = u * n + v with u < v *)
}

type t = { levels : level array (* levels.(0) is the base graph *) }

let edge_w lv u v =
  let n = Graph.n lv.lv_graph in
  let key = (min u v * n) + max u v in
  match Hashtbl.find_opt lv.lv_weight key with Some w -> w | None -> 0.0

let base_level ?(weight = fun _ _ -> 1.0) g =
  let n = Graph.n g in
  let tbl = Hashtbl.create (max 16 (Graph.edge_count g)) in
  List.iter
    (fun (u, v) -> Hashtbl.replace tbl ((u * n) + v) (weight u v))
    (Graph.edges g);
  {
    lv_graph = g;
    lv_project = Array.init n (fun v -> v);
    lv_capacity = Array.make n 1;
    lv_rep = Array.init n (fun v -> v);
    lv_weight = tbl;
  }

(* One heavy-edge matching pass over [lv]; [None] when no pair matched
   (the graph is edgeless or every vertex is isolated among the
   unmatched). *)
let coarsen_once lv =
  let g = lv.lv_graph in
  let n = Graph.n g in
  let mate = Array.make n (-1) in
  let matched = ref 0 in
  for v = 0 to n - 1 do
    if mate.(v) < 0 then begin
      (* Heaviest incident edge to an unmatched neighbor; the ascending
         neighbor scan with a strict improvement test breaks weight ties
         toward the smallest index. *)
      let best = ref (-1) and best_w = ref neg_infinity in
      Array.iter
        (fun u ->
          if mate.(u) < 0 && u <> v then begin
            let w = edge_w lv u v in
            if w > !best_w then begin
              best := u;
              best_w := w
            end
          end)
        (Graph.neighbors g v);
      if !best >= 0 then begin
        mate.(v) <- !best;
        mate.(!best) <- v;
        incr matched
      end
    end
  done;
  if !matched = 0 then None
  else begin
    let cid = Array.make n (-1) in
    let next = ref 0 in
    for v = 0 to n - 1 do
      if cid.(v) < 0 then begin
        cid.(v) <- !next;
        if mate.(v) >= 0 then cid.(mate.(v)) <- !next;
        incr next
      end
    done;
    let nc = !next in
    let wtbl = Hashtbl.create (max 16 (Graph.edge_count g)) in
    let edges = ref [] in
    List.iter
      (fun (u, v) ->
        let cu = cid.(u) and cv = cid.(v) in
        if cu <> cv then begin
          let key = (min cu cv * nc) + max cu cv in
          match Hashtbl.find_opt wtbl key with
          | None ->
            edges := (cu, cv) :: !edges;
            Hashtbl.replace wtbl key (edge_w lv u v)
          | Some w -> Hashtbl.replace wtbl key (w +. edge_w lv u v)
        end)
      (Graph.edges g);
    let capacity = Array.make nc 0 in
    let rep = Array.make nc (-1) in
    Array.iteri
      (fun c k ->
        capacity.(k) <- capacity.(k) + lv.lv_capacity.(c);
        if rep.(k) < 0 || lv.lv_rep.(c) < rep.(k) then rep.(k) <- lv.lv_rep.(c))
      cid;
    Some
      {
        lv_graph = Graph.of_edges nc !edges;
        lv_project = Array.map (fun c -> cid.(c)) lv.lv_project;
        lv_capacity = capacity;
        lv_rep = rep;
        lv_weight = wtbl;
      }
  end

let build ?weight ?(coarsest = 32) g =
  let coarsest = max 1 coarsest in
  let levels = ref [ base_level ?weight g ] in
  let continue = ref true in
  while !continue do
    let top = List.hd !levels in
    if Graph.n top.lv_graph <= coarsest then continue := false
    else
      match coarsen_once top with
      | None -> continue := false
      | Some next ->
        if Graph.n next.lv_graph >= Graph.n top.lv_graph then continue := false
        else levels := next :: !levels
  done;
  { levels = Array.of_list (List.rev !levels) }

let levels t = Array.length t.levels

let coarsest_size t = Graph.n t.levels.(Array.length t.levels - 1).lv_graph

(* Greedy connected growth at one level: start from the cluster with the
   strongest seed affinity, then repeatedly absorb the allowed neighbor
   cluster with the most seeds (then the heaviest connection to the chosen
   set, then the smallest index) until [target] base vertices are covered.
   Falls back to non-adjacent clusters only when the allowed set is
   exhausted around the chosen one, so the region stays connected whenever
   the allowed set is. *)
let grow lv ~allowed ~seeds ~target =
  let n = Graph.n lv.lv_graph in
  let seed_cnt = Array.make n 0 in
  List.iter
    (fun s ->
      let c = lv.lv_project.(s) in
      if allowed.(c) then seed_cnt.(c) <- seed_cnt.(c) + 1)
    seeds;
  let total_cap = ref 0 in
  for c = 0 to n - 1 do
    if allowed.(c) then total_cap := !total_cap + lv.lv_capacity.(c)
  done;
  if !total_cap <= target then Array.copy allowed
  else begin
    let chosen = Array.make n false in
    let gain = Array.make n 0.0 in
    let covered = ref 0 in
    let add c =
      chosen.(c) <- true;
      covered := !covered + lv.lv_capacity.(c);
      Array.iter
        (fun u ->
          if allowed.(u) && not chosen.(u) then
            gain.(u) <- gain.(u) +. edge_w lv c u)
        (Graph.neighbors lv.lv_graph c)
    in
    let start = ref (-1) in
    for c = 0 to n - 1 do
      if allowed.(c) then
        match !start with
        | -1 -> start := c
        | s ->
          if
            seed_cnt.(c) > seed_cnt.(s)
            || (seed_cnt.(c) = seed_cnt.(s)
               && lv.lv_capacity.(c) > lv.lv_capacity.(s))
          then start := c
    done;
    add !start;
    while !covered < target do
      let next = ref (-1) in
      for c = 0 to n - 1 do
        if allowed.(c) && (not chosen.(c)) && gain.(c) > 0.0 then
          match !next with
          | -1 -> next := c
          | s ->
            if
              seed_cnt.(c) > seed_cnt.(s)
              || (seed_cnt.(c) = seed_cnt.(s) && gain.(c) > gain.(s))
            then next := c
      done;
      if !next < 0 then
        (* Nothing adjacent left (disconnected allowed set): take the best
           remaining cluster outright. *)
        for c = 0 to n - 1 do
          if allowed.(c) && (not chosen.(c)) then
            match !next with
            | -1 -> next := c
            | s ->
              if
                seed_cnt.(c) > seed_cnt.(s)
                || (seed_cnt.(c) = seed_cnt.(s)
                   && lv.lv_capacity.(c) > lv.lv_capacity.(s))
              then next := c
        done;
      if !next < 0 then covered := target else add !next
    done;
    chosen
  end

let select_region t ~seeds ~capacity =
  let base = t.levels.(0) in
  let base_n = Graph.n base.lv_graph in
  let target = min capacity base_n in
  if target <= 0 then []
  else if base_n <= target then Graph.vertices base.lv_graph
  else begin
    let top = Array.length t.levels - 1 in
    let chosen =
      ref
        (grow t.levels.(top)
           ~allowed:(Array.make (Graph.n t.levels.(top).lv_graph) true)
           ~seeds ~target)
    in
    for l = top - 1 downto 0 do
      let lv = t.levels.(l) and up = t.levels.(l + 1) in
      (* A cluster is allowed iff its parent cluster was chosen; any base
         member identifies the parent (merging is hierarchical). *)
      let allowed =
        Array.init (Graph.n lv.lv_graph) (fun c ->
            !chosen.(up.lv_project.(lv.lv_rep.(c))))
      in
      chosen := grow lv ~allowed ~seeds ~target
    done;
    (* Level 0 clusters are the base vertices themselves. *)
    let out = ref [] in
    for v = base_n - 1 downto 0 do
      if !chosen.(v) then out := v :: !out
    done;
    !out
  end
