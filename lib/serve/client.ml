type address =
  | Unix_socket of string
  | Tcp of string * int

type t = {
  fd : Unix.file_descr;
  mutable pending : string;  (* received bytes past the last returned line *)
}

let connect ?(retries = 50) address =
  let sockaddr, domain =
    match address with
    | Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Tcp (host, port) ->
      (Unix.ADDR_INET (Unix.inet_addr_of_string host, port), Unix.PF_INET)
  in
  let rec attempt remaining =
    let fd = Unix.socket domain SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> { fd; pending = "" }
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
      when remaining > 0 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try ignore (Unix.select [] [] [] 0.1) with
      | Unix.Unix_error _ -> ());
      attempt (remaining - 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  attempt retries

let send_line t line =
  let data = line ^ "\n" in
  let len = String.length data in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring t.fd data !pos (len - !pos)
  done

let recv_line t =
  let chunk = Bytes.create 65536 in
  let rec read_more () =
    match String.index_opt t.pending '\n' with
    | Some i ->
      let line = String.sub t.pending 0 i in
      t.pending <-
        String.sub t.pending (i + 1) (String.length t.pending - i - 1);
      line
    | None -> (
      match Unix.read t.fd chunk 0 (Bytes.length chunk) with
      | 0 -> raise End_of_file
      | n ->
        t.pending <- t.pending ^ Bytes.sub_string chunk 0 n;
        read_more ())
  in
  read_more ()

let request t line =
  send_line t line;
  recv_line t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
