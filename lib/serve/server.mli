(** The [qcp serve] daemon: a long-running placement service over
    line-delimited JSON (see {!Protocol}).

    The daemon exists to amortize everything the one-shot CLI rebuilds per
    process: the {!Qcp_util.Task_pool} domains, the per-threshold
    adjacency memo, the cross-run route registries of {!Qcp.Score_cache},
    the {!Qcp.Portfolio.Learn} win table — and, above them all, an exact
    {!Result_cache} answering repeated requests with the bit-identical
    bytes a cold solve would produce.

    {b Architecture.}  A single-threaded [select] loop owns the sockets:
    it accepts clients, splits their byte streams into request lines, and
    feeds complete requests through admission control into a FIFO queue.
    Each loop turn drains up to [max_batch] queued requests into one
    {!Engine.dispatch} call, which runs cache lookups, dedupes identical
    keys, and solves the misses through {!Qcp.Placer.place_batch} /
    {!Qcp.Portfolio.place_batch} on the shared pool — so concurrency
    comes from batching inside the engine, never from racing threads over
    shared placement state (which is what keeps responses deterministic).

    {b Admission control.}  Three invariants bound resource use: at most
    [queue_cap] requests wait (excess gets an immediate ["overloaded"]
    response — backpressure, not silent queuing); at most [max_batch]
    placements are in flight (one engine dispatch); and every request
    carries an absolute deadline (its own budget or [default_deadline]),
    enforced between pipeline stages, so a stuck instance returns a clean
    ["timeout"] instead of wedging the batch forever.

    {b Shutdown.}  SIGINT/SIGTERM, a ["shutdown"] request, or the
    [max_requests] budget flips the loop into draining: listeners close,
    queued requests are still solved and answered, then the learn table
    is saved (under [learn]) and the process exits.  Nothing is dropped
    silently.

    {b Observability.}  Every lifecycle transition and every served
    request emits a structured {!Qcp_obs.Log} event (one JSON object per
    line; ["request"] records carry id, status, cache hit/miss, shed
    flag, queue wait, solve wall and the per-phase breakdown).  With
    [flight_cap > 0] the engine keeps a {!Qcp_obs.Flight} ring of the
    last N requests with their solve spans, dumpable as a Chrome trace
    via the ["dump"] op while the daemon keeps running — and dumped to
    [dump_dir] automatically when a dispatch exceeds [slow_dump] or ends
    in a non-["ok"] status.  The ["stats"] op (and [qcp stats]) exposes
    the counters as JSON or Prometheus text.  All of it is disarmed by
    default: the quiet hot path pays one atomic load and branch per
    would-be event. *)

type config = {
  socket_path : string option;  (** Unix socket path to listen on. *)
  port : int option;  (** TCP port on [host]. *)
  host : string;  (** TCP bind address (default ["127.0.0.1"]). *)
  jobs : int;  (** Task-pool domains shared by every batch. *)
  cache_cap : int;  (** Result-cache entries ([<= 0] disables). *)
  max_batch : int;  (** Requests solved per engine dispatch. *)
  queue_cap : int;  (** Queued requests before ["overloaded"]. *)
  default_deadline : float option;
      (** Budget (seconds) for requests that carry none. *)
  max_requests : int;
      (** Serve this many place requests, then drain and exit
          ([0] = unlimited) — benches and CI smoke tests. *)
  learn : bool;
      (** Load {!Qcp.Portfolio.Learn} from its default path at startup
          and save it back when draining. *)
  telemetry : bool;  (** Arm {!Qcp_obs.Metrics} hot-path instruments. *)
  install_signals : bool;
      (** Install SIGINT/SIGTERM drain handlers (off when the daemon runs
          inside a test or bench domain: signals are process-global). *)
  verbose : bool;  (** Alias for [log_level = Some Debug] (kept for the
          [-v] flag; an explicit [log_level] wins). *)
  log_level : Qcp_obs.Log.level option;
      (** Arm the structured logger at this level ([None] = quiet). *)
  log_file : string option;
      (** Append log lines to this file instead of stderr. *)
  flight_cap : int;
      (** Flight-recorder ring capacity ([<= 0] disables it, and with it
          the ["dump"] op and per-batch span capture). *)
  slow_dump : float option;
      (** Auto-dump the flight ring to [dump_dir] when a dispatch's
          slowest request (queue wait + wall) exceeds this many seconds,
          or any request in it ends non-["ok"].  [None] disables. *)
  dump_dir : string;  (** Directory for auto-dumped flight traces. *)
}

val default_config : config
(** No listeners (callers pick at least one), [jobs = 0],
    [cache_cap = 512], [max_batch = 16], [queue_cap = 256], no default
    deadline, unlimited requests, [learn = false], [telemetry = false],
    [install_signals = true], quiet ([log_level = None], no log file,
    [flight_cap = 0], no auto-dump, [dump_dir = "."]). *)

(** The socket-free core: parsing, caching, batching, counters.  Tests
    and benches drive it directly; {!serve} wraps it in the socket
    loop. *)
module Engine : sig
  type t

  val create : config -> t

  val parse_line : t -> string -> Protocol.envelope
  (** {!Protocol.parse_line} with this engine's interning resolvers:
      repeated env / circuit specs resolve to the same physical value
      (bounded FIFO intern tables), which keeps the adjacency memo and
      the per-graph route registries hot across requests. *)

  type job = {
    j_seq : int;  (** Engine-assigned request sequence number. *)
    j_id : string;  (** Echoed client correlation id. *)
    j_arrival : float;  (** {!Qcp_util.Clock.now} at admission. *)
    j_place : Protocol.place;
  }

  val make_job :
    t -> id:string -> arrival:float -> Protocol.place -> job
  (** Build a job with the engine's next sequence number. *)

  val dispatch : t -> now:float -> job list -> string list
  (** Solve one batch, returning response lines in job order.  Jobs whose
      timeout budget (own deadline or the config default, counted from
      arrival; portfolio races are exempt) expired before [now] are shed:
      answered ["timeout"] without solving, counted in both [timeouts]
      and [shed].  Cache hits answer immediately (the stored bytes);
      misses dedupe by cache key (duplicate jobs in one batch solve once
      and share the result), then solve through
      {!Qcp.Placer.place_batch} — classic requests with per-job absolute
      deadlines ([arrival + budget]) via [deadline_of] — and
      {!Qcp.Portfolio.place_batch} for portfolio requests.  Successful
      cacheable results are rendered once and stored; [status] maps
      deadline aborts to ["timeout"] and placement failures to
      ["unplaceable"].  Each response also emits one ["request"] access
      log event, lands one record (plus, for the batch's first solve,
      the captured solve spans) in the flight recorder when armed, and
      may trigger the slow/error auto-dump — none of which touches the
      response bytes. *)

  val control : t -> id:string -> Protocol.request -> string option
  (** Serve [Ping], [Stats] (either format) and [Dump] inline ([None]
      for [Place] and [Shutdown] — the loop owns those).  [Dump] answers
      the flight recorder's Chrome trace as the result (on one line), or
      an error when the recorder is disabled. *)

  val stats_json : t -> string
  (** Server counters as a JSON object: uptime, request/response counts
      by status (including [shed]), batch stats, cache occupancy and
      hit/miss/eviction counts, and the queue-wait histogram
      ({!Qcp_obs.Metrics.default_time_bounds} buckets). *)

  val metrics_snapshot : t -> Qcp_obs.Metrics.snapshot
  (** The counters as registry-style series under the [serve.*]
      namespace (e.g. [serve.requests], [serve.responses.ok],
      [serve.queue_wait_seconds]), merged with the process-global
      {!Qcp_obs.Metrics.global} snapshot, sorted by name. *)

  val stats_prometheus : t -> string
  (** {!metrics_snapshot} rendered by {!Qcp_obs.Export.prometheus}. *)

  val cache : t -> Result_cache.t

  val flight : t -> Qcp_obs.Flight.t option
  (** The flight recorder ([None] unless [flight_cap > 0]). *)

  val requests_served : t -> int
  (** Place responses sent (the [max_requests] budget meter). *)
end

val serve : config -> unit
(** Run the daemon until shutdown (see above).  Raises
    [Invalid_argument] when the config names no listener, [Unix_error]
    on socket setup failures (e.g. the socket path is in use). *)
