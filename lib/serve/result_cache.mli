(** Bounded exact result cache for the serving daemon.

    Maps full content keys (see {!Protocol.key}) to rendered result text.
    Values are the final bytes a cold solve produced, so a hit returns a
    bit-identical response body.  Eviction is least-recently-used with a
    deterministic tie-free order: every access stamps a unique logical
    tick, so the eviction victim is a pure function of the operation
    history — two daemons fed the same request stream hold the same
    entries. *)

type t

val create : int -> t
(** [create cap]: hold at most [cap] entries.  [cap <= 0] disables the
    cache (every {!find} misses, {!add} is a no-op). *)

val capacity : t -> int

val length : t -> int

val find : t -> string -> string option
(** Lookup by full key; refreshes the entry's recency and counts a hit or
    a miss. *)

val add : t -> string -> string -> unit
(** Insert (or refresh) a binding, evicting the least recently used entry
    when full. *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int
