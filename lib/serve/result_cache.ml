type entry = { value : string; mutable tick : int }

type t = {
  cap : int;
  table : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
  lock : Mutex.t;
}

let create cap =
  {
    cap;
    table = Hashtbl.create (max 16 (min cap 4096));
    clock = 0;
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
    lock = Mutex.create ();
  }

let capacity t = t.cap

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = with_lock t (fun () -> Hashtbl.length t.table)

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t key =
  with_lock t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    entry.tick <- tick t;
    t.hit_count <- t.hit_count + 1;
    Some entry.value
  | None ->
    t.miss_count <- t.miss_count + 1;
    None

(* Ticks are unique, so the minimum-tick victim is unambiguous: eviction
   order depends only on the access history, never on hash-table layout. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key entry ->
      match !victim with
      | Some (_, oldest) when oldest.tick <= entry.tick -> ()
      | _ -> victim := Some (key, entry))
    t.table;
  match !victim with
  | Some (key, _) ->
    Hashtbl.remove t.table key;
    t.eviction_count <- t.eviction_count + 1
  | None -> ()

let add t key value =
  if t.cap > 0 then
    with_lock t @@ fun () ->
    match Hashtbl.find_opt t.table key with
    | Some _ ->
      Hashtbl.replace t.table key { value; tick = tick t }
    | None ->
      if Hashtbl.length t.table >= t.cap then evict_lru t;
      Hashtbl.add t.table key { value; tick = tick t }

let hits t = with_lock t (fun () -> t.hit_count)

let misses t = with_lock t (fun () -> t.miss_count)

let evictions t = with_lock t (fun () -> t.eviction_count)
