(** The [qcp serve] wire protocol: line-delimited JSON requests and
    responses, plus the content-hash request keys behind the daemon's
    exact result cache.

    One request per line, one response line per request, in order:

    {v
    {"id": "r1", "op": "place", "env": "trans-crotonic",
     "circuit": "phaseest", "options": {"threshold": 100}}
    {"id": "r1", "status": "ok", "cached": false, "key": "f00..", ,
     "result": {"runtime": 6900, ...}}
    v}

    [env] and [circuit] are resolved like the CLI's arguments — molecule /
    catalog / library names and the [chain:<n>] / [grid:<r>:<c>]
    generators — except that file paths are rejected: a serving daemon
    must not read paths named by remote clients.  Multi-line payloads
    (values containing ['\n']) are instead parsed as inline [.env] /
    [.qc] documents, so clients can submit circuits the server has never
    seen.

    {b Content-hash keys.}  A place request's cache key is the canonical
    serialization of its options ({!Qcp.Options.canonical}), environment
    ({!Qcp_env.Env_format.print} of the {e resolved} value) and circuit
    ({!Qcp_circuit.Qc_format.print}).  Resolution normalizes formatting,
    comments and field order, so two requests get the same key exactly
    when they denote structurally equal instances — and the exact cache
    can answer repeats with the bit-identical result a cold solve would
    produce.  The full key is used for lookups (no truncation, so no
    false collisions); responses carry its FNV-1a 64-bit hex digest for
    observability. *)

type place = {
  env : Qcp_env.Environment.t;
  circuit : Qcp_circuit.Circuit.t;
  options : Qcp.Options.t;
  deadline : float option;
      (** The request's timeout budget in seconds, counted from arrival
          (the top-level ["deadline"] field).  Enforced out-of-band by the
          server — it is {e not} part of the content key, so one cached
          solve answers the same instance under any budget.  Distinct from
          ["options":{"deadline"}], which is the portfolio race's anytime
          budget: that one shapes the result, lives in the key, and (like
          the CLI flag) implies [portfolio].  A portfolio race ignores
          this out-of-band budget (its anchor strategy must finish). *)
  telemetry : bool;
      (** Include the run's full metrics snapshot in the result. *)
  key : string;  (** Canonical content key (see above). *)
}

type stats_format = Stats_json | Stats_prometheus
    (** The ["format"] member of a stats request: ["json"] (default) for
        the engine's counter object, ["prometheus"] (or ["prom"]) for the
        text exposition format rendered by {!Qcp_obs.Export.prometheus}. *)

type request =
  | Place of place
  | Ping
  | Stats of stats_format
  | Dump  (** Flight-recorder dump: the last N requests as a Chrome trace. *)
  | Shutdown

type envelope = {
  id : string;  (** Client correlation id, echoed verbatim ([""] if absent). *)
  request : (request, string) result;
      (** [Error] carries a parse/validation message; the server answers
          it with a [status = "error"] response. *)
}

val parse_line :
  ?resolve_env:(string -> (Qcp_env.Environment.t, string) result) ->
  ?resolve_circuit:(string -> (Qcp_circuit.Circuit.t, string) result) ->
  string ->
  envelope
(** Parse one request line.  [resolve_env] / [resolve_circuit] override
    the spec resolvers (the daemon passes interning resolvers so repeated
    specs share one physical environment — which is what keeps the
    adjacency and route registries hot across requests); the defaults are
    {!resolve_env} and {!resolve_circuit} below. *)

val resolve_env : string -> (Qcp_env.Environment.t, string) result
(** Molecule names, [chain:<n>], [grid:<r>:<c>], or an inline multi-line
    [.env] document.  No file paths. *)

val resolve_circuit : string -> (Qcp_circuit.Circuit.t, string) result
(** Catalog and library names, or an inline multi-line [.qc] document.
    No file paths. *)

val key : Qcp.Options.t -> Qcp_env.Environment.t -> Qcp_circuit.Circuit.t -> string
(** The canonical content key of a (options, env, circuit) instance. *)

val key_hash : string -> string
(** FNV-1a 64-bit hex digest of a key (16 hex chars) — the [key] field of
    responses. *)

val cacheable : place -> bool
(** Whether the request's result may be cached and served to repeats:
    everything except portfolio races under a finite deadline, whose
    winner depends on machine load (the one knob that trades determinism
    for latency). *)

val result_of_program :
  telemetry:bool -> Qcp.Placer.program -> Qcp_util.Json.t
(** The stable result object of a placed program: runtime (delay units
    and seconds), stage/SWAP counts, initial and final placements, the
    search-effort stats, fidelity when decoherence is modeled, and —
    with [telemetry] — the run's full per-request metrics snapshot
    (the PR 6 registry: phase gauges, cache counters, search counters).
    Deterministic apart from wall-clock fields ([scoring_seconds], phase
    gauges); the cache stores the rendered text, so repeats are
    byte-identical. *)

val response :
  id:string ->
  status:string ->
  ?cached:bool ->
  ?key:string ->
  ?queue_wait:float ->
  ?wall:float ->
  ?result:string ->
  ?error:string ->
  unit ->
  string
(** Render one response line (no trailing newline).  [status] is one of
    ["ok"], ["timeout"], ["unplaceable"], ["error"], ["overloaded"],
    ["shutting-down"].  [key] is hashed with {!key_hash} before rendering.
    [result] is pre-rendered JSON text (typically
    [Json.to_string (result_of_program ...)] — or the cache's stored copy
    of exactly that), spliced in verbatim so cached responses carry the
    cold solve's bytes. *)
