module Json = Qcp_util.Json
module Clock = Qcp_util.Clock
module Metrics = Qcp_obs.Metrics
module Placer = Qcp.Placer
module Options = Qcp.Options

type config = {
  socket_path : string option;
  port : int option;
  host : string;
  jobs : int;
  cache_cap : int;
  max_batch : int;
  queue_cap : int;
  default_deadline : float option;
  max_requests : int;
  learn : bool;
  telemetry : bool;
  install_signals : bool;
  verbose : bool;
}

let default_config =
  {
    socket_path = None;
    port = None;
    host = "127.0.0.1";
    jobs = 0;
    cache_cap = 512;
    max_batch = 16;
    queue_cap = 256;
    default_deadline = None;
    max_requests = 0;
    learn = false;
    telemetry = false;
    install_signals = true;
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

module Engine = struct
  (* Bounded FIFO intern table: spec string -> resolved value.  Interning
     makes repeated specs share one physical environment / circuit, which
     is what keeps the per-env adjacency memo and the per-graph route
     registries of {!Qcp.Score_cache} hot across requests.  FIFO keeps
     eviction deterministic (same reasoning as the shared route tables). *)
  type 'a intern = {
    in_cap : int;
    in_table : (string, 'a) Hashtbl.t;
    in_order : string Queue.t;
  }

  let intern_create cap =
    { in_cap = cap; in_table = Hashtbl.create 32; in_order = Queue.create () }

  let intern it resolve spec =
    match Hashtbl.find_opt it.in_table spec with
    | Some v -> Ok v
    | None -> (
      match resolve spec with
      | Error _ as e -> e
      | Ok v ->
        if Hashtbl.length it.in_table >= it.in_cap then (
          match Queue.take_opt it.in_order with
          | Some oldest -> Hashtbl.remove it.in_table oldest
          | None -> ());
        Hashtbl.add it.in_table spec v;
        Queue.add spec it.in_order;
        Ok v)

  type counters = {
    mutable c_requests : int;  (* request lines parsed *)
    mutable c_placed : int;  (* "ok" responses *)
    mutable c_errors : int;
    mutable c_timeouts : int;
    mutable c_unplaceable : int;
    mutable c_overloaded : int;
    mutable c_batches : int;
    mutable c_max_batch : int;
    qw_counts : int array;
    mutable qw_sum : float;
    mutable qw_count : int;
  }

  type t = {
    config : config;
    result_cache : Result_cache.t;
    envs : Qcp_env.Environment.t intern;
    circuits : Qcp_circuit.Circuit.t intern;
    counters : counters;
    started : float;
  }

  let qw_bounds = Metrics.default_time_bounds

  let create config =
    {
      config;
      result_cache = Result_cache.create config.cache_cap;
      envs = intern_create 128;
      circuits = intern_create 128;
      counters =
        {
          c_requests = 0;
          c_placed = 0;
          c_errors = 0;
          c_timeouts = 0;
          c_unplaceable = 0;
          c_overloaded = 0;
          c_batches = 0;
          c_max_batch = 0;
          qw_counts = Array.make (Array.length qw_bounds + 1) 0;
          qw_sum = 0.0;
          qw_count = 0;
        };
      started = Clock.now ();
    }

  let cache t = t.result_cache

  let requests_served t =
    t.counters.c_placed + t.counters.c_timeouts + t.counters.c_unplaceable

  let parse_line t line =
    t.counters.c_requests <- t.counters.c_requests + 1;
    Protocol.parse_line
      ~resolve_env:(intern t.envs Protocol.resolve_env)
      ~resolve_circuit:(intern t.circuits Protocol.resolve_circuit)
      line

  type job = {
    j_id : string;
    j_arrival : float;
    j_place : Protocol.place;
  }

  let observe_wait c seconds =
    let i = Metrics.bucket_index qw_bounds seconds in
    c.qw_counts.(i) <- c.qw_counts.(i) + 1;
    c.qw_sum <- c.qw_sum +. seconds;
    c.qw_count <- c.qw_count + 1

  (* The cache key adds the telemetry flag on top of the content key: the
     flag changes the rendered result (metrics present or not) without
     changing the instance, and cached bytes must match what the hit's
     request would have produced cold. *)
  let cache_key p =
    p.Protocol.key ^ if p.Protocol.telemetry then "\n+telemetry" else ""

  type assignment =
    | Hit of string  (* cached result text *)
    | Solve of int * bool  (* unique-solve index, first occurrence? *)

  let dispatch t ~now jobs =
    let c = t.counters in
    let jobs = Array.of_list jobs in
    let n = Array.length jobs in
    c.c_batches <- c.c_batches + 1;
    if n > c.c_max_batch then c.c_max_batch <- n;
    Array.iter (fun j -> observe_wait c (Float.max 0.0 (now -. j.j_arrival))) jobs;
    (* Lookup + dedup. *)
    let unique = ref [] and unique_count = ref 0 in
    let index_of_key = Hashtbl.create 16 in
    let assignments =
      Array.mapi
        (fun i j ->
          let p = j.j_place in
          let cacheable = Protocol.cacheable p in
          match
            if cacheable then Result_cache.find t.result_cache (cache_key p)
            else None
          with
          | Some text -> Hit text
          | None ->
            (* Non-cacheable (portfolio + finite deadline) requests never
               dedupe: each gets its own race. *)
            let dk = if cacheable then cache_key p else Printf.sprintf "!%d" i in
            (match Hashtbl.find_opt index_of_key dk with
            | Some u -> Solve (u, false)
            | None ->
              let u = !unique_count in
              incr unique_count;
              Hashtbl.add index_of_key dk u;
              unique := j :: !unique;
              Solve (u, true)))
        jobs
    in
    let t_lookup = Clock.now () in
    let unique = Array.of_list (List.rev !unique) in
    (* Solve the misses: classic requests in one placer batch with per-job
       absolute deadlines, portfolio requests in one portfolio batch
       (their budget lives in [options.deadline]). *)
    let outcomes = Array.make (Array.length unique) (Placer.Unplaceable "") in
    let classic = ref [] and races = ref [] in
    Array.iteri
      (fun u j ->
        if j.j_place.Protocol.options.Options.portfolio then
          races := (u, j) :: !races
        else classic := (u, j) :: !classic)
      unique;
    let classic = List.rev !classic and races = List.rev !races in
    let spec j =
      ( j.j_place.Protocol.options,
        j.j_place.Protocol.env,
        j.j_place.Protocol.circuit )
    in
    let budgets =
      Array.of_list
        (List.map
           (fun (_, j) ->
             match j.j_place.Protocol.deadline with
             | Some b -> j.j_arrival +. b
             | None -> (
               match t.config.default_deadline with
               | Some b -> j.j_arrival +. b
               | None -> infinity))
           classic)
    in
    let classic_outcomes =
      Placer.place_batch ~jobs:t.config.jobs
        ~deadline_of:(fun i -> budgets.(i))
        (List.map (fun (_, j) -> spec j) classic)
    in
    List.iter2 (fun (u, _) o -> outcomes.(u) <- o) classic classic_outcomes;
    let race_outcomes =
      match races with
      | [] -> []
      | _ ->
        Qcp.Portfolio.place_batch ~jobs:t.config.jobs
          (List.map (fun (_, j) -> spec j) races)
    in
    List.iter2 (fun (u, _) o -> outcomes.(u) <- o) races race_outcomes;
    let t_solve = Clock.now () in
    (* Render unique results once; successful cacheable ones get stored. *)
    let rendered =
      Array.mapi
        (fun u outcome ->
          let j = unique.(u) in
          let p = j.j_place in
          match outcome with
          | Placer.Placed program ->
            let text =
              Json.to_string
                (Protocol.result_of_program ~telemetry:p.Protocol.telemetry
                   program)
            in
            if Protocol.cacheable p then
              Result_cache.add t.result_cache (cache_key p) text;
            ("ok", Some text, None)
          | Placer.Unplaceable msg when msg = Placer.msg_deadline ->
            ("timeout", None, Some msg)
          | Placer.Unplaceable msg -> ("unplaceable", None, Some msg))
        outcomes
    in
    let count_status = function
      | "ok" -> c.c_placed <- c.c_placed + 1
      | "timeout" -> c.c_timeouts <- c.c_timeouts + 1
      | _ -> c.c_unplaceable <- c.c_unplaceable + 1
    in
    Array.to_list
      (Array.mapi
         (fun i j ->
           let p = j.j_place in
           let queue_wait = Float.max 0.0 (now -. j.j_arrival) in
           match assignments.(i) with
           | Hit text ->
             c.c_placed <- c.c_placed + 1;
             Protocol.response ~id:j.j_id ~status:"ok" ~cached:true
               ~key:p.Protocol.key ~queue_wait ~wall:(t_lookup -. now)
               ~result:text ()
           | Solve (u, first) ->
             let status, result, error = rendered.(u) in
             count_status status;
             Protocol.response ~id:j.j_id ~status
               ~cached:(not first && status = "ok")
               ~key:p.Protocol.key ~queue_wait ~wall:(t_solve -. now) ?result
               ?error ())
         jobs)

  let stats_json t =
    let c = t.counters in
    let num v = Json.Num (float_of_int v) in
    let stats =
      Json.Obj
        [
          ("uptime_s", Json.Num (Clock.now () -. t.started));
          ("requests", num c.c_requests);
          ("placed", num c.c_placed);
          ("errors", num c.c_errors);
          ("timeouts", num c.c_timeouts);
          ("unplaceable", num c.c_unplaceable);
          ("overloaded", num c.c_overloaded);
          ("batches", num c.c_batches);
          ("max_batch", num c.c_max_batch);
          ( "cache",
            Json.Obj
              [
                ("entries", num (Result_cache.length t.result_cache));
                ("capacity", num (Result_cache.capacity t.result_cache));
                ("hits", num (Result_cache.hits t.result_cache));
                ("misses", num (Result_cache.misses t.result_cache));
                ("evictions", num (Result_cache.evictions t.result_cache));
              ] );
          ( "queue_wait",
            Json.Obj
              [
                ( "bounds",
                  Json.Arr
                    (Array.to_list
                       (Array.map (fun b -> Json.Num b) qw_bounds)) );
                ( "counts",
                  Json.Arr (Array.to_list (Array.map num c.qw_counts)) );
                ("sum", Json.Num c.qw_sum);
                ("count", num c.qw_count);
              ] );
        ]
    in
    Json.to_string stats

  let control t ~id request =
    match request with
    | Protocol.Ping -> Some (Protocol.response ~id ~status:"ok" ())
    | Protocol.Stats ->
      Some (Protocol.response ~id ~status:"ok" ~result:(stats_json t) ())
    | Protocol.Place _ | Protocol.Shutdown -> None

  let count_error t = t.counters.c_errors <- t.counters.c_errors + 1

  let count_overloaded t =
    t.counters.c_overloaded <- t.counters.c_overloaded + 1
end

(* ------------------------------------------------------------------ *)
(* Socket loop                                                         *)
(* ------------------------------------------------------------------ *)

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes received, not yet split into lines *)
  mutable alive : bool;
}

let log config fmt =
  if config.verbose then Printf.eprintf (fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let write_all client line =
  let data = line ^ "\n" in
  let len = String.length data in
  let pos = ref 0 in
  try
    while !pos < len do
      pos := !pos + Unix.write_substring client.fd data !pos (len - !pos)
    done
  with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> client.alive <- false

(* Split complete lines out of a client's receive buffer. *)
let take_lines buf =
  let data = Buffer.contents buf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_substring buf data (last + 1) (String.length data - last - 1);
    String.split_on_char '\n' (String.sub data 0 last)
    |> List.filter (fun l -> String.trim l <> "")

type queued = {
  q_client : client;
  q_job : Engine.job;
}

let listeners config =
  let unix_listener path =
    (* A stale socket file from a crashed daemon would make bind fail;
       connect-probing it is racy, so takeover is explicit: unlink only
       what is a socket. *)
    (try
       if (Unix.stat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
     with Unix.Unix_error (ENOENT, _, _) -> ());
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  in
  let tcp_listener port =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string config.host, port));
    Unix.listen fd 64;
    fd
  in
  let fds =
    Option.to_list (Option.map unix_listener config.socket_path)
    @ Option.to_list (Option.map tcp_listener config.port)
  in
  if fds = [] then
    invalid_arg "Server.serve: config names no listener (socket_path or port)";
  fds

let serve config =
  let engine = Engine.create config in
  if config.telemetry then Metrics.set_enabled true;
  if config.learn then
    Option.iter
      (fun path -> ignore (Qcp.Portfolio.Learn.load path : bool))
      (Qcp.Portfolio.Learn.default_path ());
  let listening = listeners config in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let stop = ref false in
  if config.install_signals then begin
    let handler = Sys.Signal_handle (fun _ -> stop := true) in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler
  end;
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  let queue : queued Queue.t = Queue.create () in
  let drop client =
    client.alive <- false;
    Hashtbl.remove clients client.fd;
    try Unix.close client.fd with Unix.Unix_error _ -> ()
  in
  let handle_line client line =
    let envelope = Engine.parse_line engine line in
    let id = envelope.Protocol.id in
    match envelope.Protocol.request with
    | Error msg ->
      Engine.count_error engine;
      write_all client (Protocol.response ~id ~status:"error" ~error:msg ())
    | Ok Protocol.Shutdown ->
      stop := true;
      write_all client (Protocol.response ~id ~status:"ok" ())
    | Ok ((Protocol.Ping | Protocol.Stats) as req) ->
      Option.iter (write_all client) (Engine.control engine ~id req)
    | Ok (Protocol.Place place) ->
      if !stop then
        write_all client (Protocol.response ~id ~status:"shutting-down" ())
      else if Queue.length queue >= config.queue_cap then begin
        Engine.count_overloaded engine;
        write_all client
          (Protocol.response ~id ~status:"overloaded"
             ~error:"request queue is full" ())
      end
      else
        Queue.add
          {
            q_client = client;
            q_job =
              {
                Engine.j_id = id;
                j_arrival = Clock.now ();
                j_place = place;
              };
          }
          queue
  in
  let dispatch_some () =
    let batch = ref [] in
    while Queue.length queue > 0 && List.length !batch < config.max_batch do
      batch := Queue.pop queue :: !batch
    done;
    let batch = List.rev !batch in
    if batch <> [] then begin
      log config "qcp serve: dispatching %d request(s)" (List.length batch);
      let responses =
        Engine.dispatch engine ~now:(Clock.now ())
          (List.map (fun q -> q.q_job) batch)
      in
      List.iter2
        (fun q response -> if q.q_client.alive then write_all q.q_client response)
        batch responses
    end
  in
  let budget_exhausted () =
    config.max_requests > 0
    && Engine.requests_served engine
       + Queue.length queue >= config.max_requests
  in
  while not (!stop && Queue.is_empty queue) do
    if !stop then
      (* Draining: no new work, just answer what is queued. *)
      dispatch_some ()
    else begin
      let fds =
        listening @ Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
      in
      let readable, _, _ =
        try Unix.select fds [] [] 0.2
        with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if List.mem fd listening then begin
            match (try Some (Unix.accept fd) with Unix.Unix_error _ -> None) with
            | Some (cfd, _) ->
              log config "qcp serve: client connected";
              Hashtbl.replace clients cfd
                { fd = cfd; buf = Buffer.create 256; alive = true }
            | None -> ()
          end
          else
            match Hashtbl.find_opt clients fd with
            | None -> ()
            | Some client -> (
              let chunk = Bytes.create 65536 in
              match
                try Unix.read fd chunk 0 (Bytes.length chunk)
                with Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> 0
              with
              | 0 -> drop client
              | n ->
                Buffer.add_subbytes client.buf chunk 0 n;
                List.iter (handle_line client) (take_lines client.buf)))
        readable;
      dispatch_some ();
      if budget_exhausted () then stop := true
    end
  done;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listening;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    clients;
  Option.iter
    (fun path -> try Unix.unlink path with Unix.Unix_error _ -> ())
    config.socket_path;
  if config.learn then
    Option.iter
      (fun path ->
        try Qcp.Portfolio.Learn.save path with Sys_error _ -> ())
      (Qcp.Portfolio.Learn.default_path ());
  log config "qcp serve: drained, exiting (%s)" (Engine.stats_json engine)
