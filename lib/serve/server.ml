module Json = Qcp_util.Json
module Clock = Qcp_util.Clock
module Metrics = Qcp_obs.Metrics
module Trace = Qcp_obs.Trace
module Log = Qcp_obs.Log
module Flight = Qcp_obs.Flight
module Placer = Qcp.Placer
module Options = Qcp.Options

type config = {
  socket_path : string option;
  port : int option;
  host : string;
  jobs : int;
  cache_cap : int;
  max_batch : int;
  queue_cap : int;
  default_deadline : float option;
  max_requests : int;
  learn : bool;
  telemetry : bool;
  install_signals : bool;
  verbose : bool;
  log_level : Log.level option;
  log_file : string option;
  flight_cap : int;
  slow_dump : float option;
  dump_dir : string;
}

let default_config =
  {
    socket_path = None;
    port = None;
    host = "127.0.0.1";
    jobs = 0;
    cache_cap = 512;
    max_batch = 16;
    queue_cap = 256;
    default_deadline = None;
    max_requests = 0;
    learn = false;
    telemetry = false;
    install_signals = true;
    verbose = false;
    log_level = None;
    log_file = None;
    flight_cap = 0;
    slow_dump = None;
    dump_dir = ".";
  }

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

module Engine = struct
  (* Bounded FIFO intern table: spec string -> resolved value.  Interning
     makes repeated specs share one physical environment / circuit, which
     is what keeps the per-env adjacency memo and the per-graph route
     registries of {!Qcp.Score_cache} hot across requests.  FIFO keeps
     eviction deterministic (same reasoning as the shared route tables). *)
  type 'a intern = {
    in_cap : int;
    in_table : (string, 'a) Hashtbl.t;
    in_order : string Queue.t;
  }

  let intern_create cap =
    { in_cap = cap; in_table = Hashtbl.create 32; in_order = Queue.create () }

  let intern it resolve spec =
    match Hashtbl.find_opt it.in_table spec with
    | Some v -> Ok v
    | None -> (
      match resolve spec with
      | Error _ as e -> e
      | Ok v ->
        if Hashtbl.length it.in_table >= it.in_cap then (
          match Queue.take_opt it.in_order with
          | Some oldest -> Hashtbl.remove it.in_table oldest
          | None -> ());
        Hashtbl.add it.in_table spec v;
        Queue.add spec it.in_order;
        Ok v)

  type counters = {
    mutable c_requests : int;  (* request lines parsed *)
    mutable c_placed : int;  (* "ok" responses *)
    mutable c_errors : int;
    mutable c_timeouts : int;
    mutable c_shed : int;  (* of the timeouts, dropped at dispatch *)
    mutable c_unplaceable : int;
    mutable c_overloaded : int;
    mutable c_batches : int;
    mutable c_max_batch : int;
    qw_counts : int array;
    mutable qw_sum : float;
    mutable qw_count : int;
  }

  type t = {
    config : config;
    result_cache : Result_cache.t;
    envs : Qcp_env.Environment.t intern;
    circuits : Qcp_circuit.Circuit.t intern;
    counters : counters;
    flight : Flight.t option;
    mutable seq : int;  (* next request sequence number *)
    started : float;
  }

  let qw_bounds = Metrics.default_time_bounds

  let create config =
    {
      config;
      result_cache = Result_cache.create config.cache_cap;
      envs = intern_create 128;
      circuits = intern_create 128;
      counters =
        {
          c_requests = 0;
          c_placed = 0;
          c_errors = 0;
          c_timeouts = 0;
          c_shed = 0;
          c_unplaceable = 0;
          c_overloaded = 0;
          c_batches = 0;
          c_max_batch = 0;
          qw_counts = Array.make (Array.length qw_bounds + 1) 0;
          qw_sum = 0.0;
          qw_count = 0;
        };
      flight =
        (if config.flight_cap > 0 then
           Some (Flight.create ~capacity:config.flight_cap)
         else None);
      seq = 0;
      started = Clock.now ();
    }

  let cache t = t.result_cache

  let flight t = t.flight

  let requests_served t =
    t.counters.c_placed + t.counters.c_timeouts + t.counters.c_unplaceable

  let parse_line t line =
    t.counters.c_requests <- t.counters.c_requests + 1;
    Protocol.parse_line
      ~resolve_env:(intern t.envs Protocol.resolve_env)
      ~resolve_circuit:(intern t.circuits Protocol.resolve_circuit)
      line

  type job = {
    j_seq : int;
    j_id : string;
    j_arrival : float;
    j_place : Protocol.place;
  }

  let make_job t ~id ~arrival place =
    let seq = t.seq in
    t.seq <- t.seq + 1;
    { j_seq = seq; j_id = id; j_arrival = arrival; j_place = place }

  let observe_wait c seconds =
    let i = Metrics.bucket_index qw_bounds seconds in
    c.qw_counts.(i) <- c.qw_counts.(i) + 1;
    c.qw_sum <- c.qw_sum +. seconds;
    c.qw_count <- c.qw_count + 1

  (* The cache key adds the telemetry flag on top of the content key: the
     flag changes the rendered result (metrics present or not) without
     changing the instance, and cached bytes must match what the hit's
     request would have produced cold. *)
  let cache_key p =
    p.Protocol.key ^ if p.Protocol.telemetry then "\n+telemetry" else ""

  (* A request's absolute timeout budget.  Portfolio races ignore the
     out-of-band budget (their anchor strategy must finish); everything
     else counts its own deadline — or the server default — from
     arrival. *)
  let budget config j =
    if j.j_place.Protocol.options.Options.portfolio then infinity
    else
      match j.j_place.Protocol.deadline with
      | Some b -> j.j_arrival +. b
      | None -> (
        match config.default_deadline with
        | Some b -> j.j_arrival +. b
        | None -> infinity)

  type assignment =
    | Shed  (* budget expired before dispatch: answered without solving *)
    | Hit of string  (* cached result text *)
    | Solve of int * bool  (* unique-solve index, first occurrence? *)

  let dispatch t ~now jobs =
    let c = t.counters in
    let jobs = Array.of_list jobs in
    let n = Array.length jobs in
    c.c_batches <- c.c_batches + 1;
    if n > c.c_max_batch then c.c_max_batch <- n;
    Array.iter (fun j -> observe_wait c (Float.max 0.0 (now -. j.j_arrival))) jobs;
    (* Shed check, then lookup + dedup.  A job whose budget expired while
       it queued is answered immediately — solving it would waste batch
       capacity on a response the client already gave up on, and the
       placer would only abort it at the next pipeline stage anyway. *)
    let unique = ref [] and unique_count = ref 0 in
    let index_of_key = Hashtbl.create 16 in
    let assignments =
      Array.mapi
        (fun i j ->
          if budget t.config j <= now then Shed
          else
            let p = j.j_place in
            let cacheable = Protocol.cacheable p in
            match
              if cacheable then Result_cache.find t.result_cache (cache_key p)
              else None
            with
            | Some text -> Hit text
            | None ->
              (* Non-cacheable (portfolio + finite deadline) requests never
                 dedupe: each gets its own race. *)
              let dk =
                if cacheable then cache_key p else Printf.sprintf "!%d" i
              in
              (match Hashtbl.find_opt index_of_key dk with
              | Some u -> Solve (u, false)
              | None ->
                let u = !unique_count in
                incr unique_count;
                Hashtbl.add index_of_key dk u;
                unique := j :: !unique;
                Solve (u, true)))
        jobs
    in
    let t_lookup = Clock.now () in
    let unique = Array.of_list (List.rev !unique) in
    (* Solve the misses under a per-batch trace capture when the flight
       recorder is armed (and nobody else owns the tracer): the spans land
       on the batch's first solved record, dumpable while the daemon keeps
       running.  Tracing also starts the placer's phase clocks, so flight
       records carry a phase breakdown even without --telemetry. *)
    let capture =
      t.flight <> None && Array.length unique > 0 && not (Trace.enabled ())
    in
    let trace_abs = ref 0.0 in
    if capture then begin
      Trace.start ~capacity:4096 ();
      trace_abs := Clock.now ()
    end;
    (* Classic requests solve in one placer batch with per-job absolute
       deadlines, portfolio requests in one portfolio batch (their budget
       lives in [options.deadline]). *)
    let outcomes = Array.make (Array.length unique) (Placer.Unplaceable "") in
    let classic = ref [] and races = ref [] in
    Array.iteri
      (fun u j ->
        if j.j_place.Protocol.options.Options.portfolio then
          races := (u, j) :: !races
        else classic := (u, j) :: !classic)
      unique;
    let classic = List.rev !classic and races = List.rev !races in
    let spec j =
      ( j.j_place.Protocol.options,
        j.j_place.Protocol.env,
        j.j_place.Protocol.circuit )
    in
    let budgets =
      Array.of_list (List.map (fun (_, j) -> budget t.config j) classic)
    in
    let classic_outcomes =
      Placer.place_batch ~jobs:t.config.jobs
        ~deadline_of:(fun i -> budgets.(i))
        (List.map (fun (_, j) -> spec j) classic)
    in
    List.iter2 (fun (u, _) o -> outcomes.(u) <- o) classic classic_outcomes;
    let race_outcomes =
      match races with
      | [] -> []
      | _ ->
        Qcp.Portfolio.place_batch ~jobs:t.config.jobs
          (List.map (fun (_, j) -> spec j) races)
    in
    List.iter2 (fun (u, _) o -> outcomes.(u) <- o) races race_outcomes;
    let t_solve = Clock.now () in
    let spans =
      if capture then begin
        Trace.stop ();
        (* Rebase span timestamps from the capture epoch onto the engine
           timeline (seconds since engine start), matching the flight
           records' arrival stamps. *)
        let off = !trace_abs -. t.started in
        List.map
          (fun (e : Trace.event) -> { e with Trace.ts = e.Trace.ts +. off })
          (Trace.events ())
      end
      else []
    in
    (* Render unique results once; successful cacheable ones get stored. *)
    let rendered =
      Array.mapi
        (fun u outcome ->
          let j = unique.(u) in
          let p = j.j_place in
          match outcome with
          | Placer.Placed program ->
            let text =
              Json.to_string
                (Protocol.result_of_program ~telemetry:p.Protocol.telemetry
                   program)
            in
            if Protocol.cacheable p then
              Result_cache.add t.result_cache (cache_key p) text;
            ("ok", Some text, None)
          | Placer.Unplaceable msg when msg = Placer.msg_deadline ->
            ("timeout", None, Some msg)
          | Placer.Unplaceable msg -> ("unplaceable", None, Some msg))
        outcomes
    in
    let phases_of =
      Array.map
        (function
          | Placer.Placed program ->
            List.filter (fun (_, s) -> s > 0.0) (Placer.phase_seconds program)
          | Placer.Unplaceable _ -> [])
        outcomes
    in
    let count_status = function
      | "ok" -> c.c_placed <- c.c_placed + 1
      | "timeout" -> c.c_timeouts <- c.c_timeouts + 1
      | _ -> c.c_unplaceable <- c.c_unplaceable + 1
    in
    let spans_left = ref spans in
    let slowest = ref 0.0 in
    let trouble = ref false in
    let responses =
      Array.to_list
        (Array.mapi
           (fun i j ->
             let p = j.j_place in
             let queue_wait = Float.max 0.0 (now -. j.j_arrival) in
             let status, cached, shed, wall, result, error, phases =
               match assignments.(i) with
               | Shed ->
                 c.c_timeouts <- c.c_timeouts + 1;
                 c.c_shed <- c.c_shed + 1;
                 ( "timeout", false, true, 0.0, None,
                   Some "deadline expired before dispatch", [] )
               | Hit text ->
                 c.c_placed <- c.c_placed + 1;
                 ("ok", true, false, t_lookup -. now, Some text, None, [])
               | Solve (u, first) ->
                 let status, result, error = rendered.(u) in
                 count_status status;
                 ( status,
                   (not first) && status = "ok",
                   false, t_solve -. now, result, error, phases_of.(u) )
             in
             (match t.flight with
             | None -> ()
             | Some fl ->
               let f_spans =
                 match assignments.(i) with
                 | Solve (_, true) ->
                   let s = !spans_left in
                   spans_left := [];
                   s
                 | Shed | Hit _ | Solve (_, false) -> []
               in
               Flight.record fl
                 {
                   Flight.f_seq = j.j_seq;
                   f_id = j.j_id;
                   f_op = "place";
                   f_status = status;
                   f_cached = cached;
                   f_shed = shed;
                   f_key = Protocol.key_hash p.Protocol.key;
                   f_arrival = j.j_arrival -. t.started;
                   f_queue_wait = queue_wait;
                   f_wall = wall;
                   f_phases = phases;
                   f_spans;
                 });
             if shed then
               Log.info "shed" (fun () ->
                   [
                     ("req_seq", Log.Int j.j_seq);
                     ("id", Log.Str j.j_id);
                     ("key", Log.Str (Protocol.key_hash p.Protocol.key));
                     ("queue_wait_s", Log.Num queue_wait);
                   ]);
             Log.info "request" (fun () ->
                 [
                   ("req_seq", Log.Int j.j_seq);
                   ("id", Log.Str j.j_id);
                   ("op", Log.Str "place");
                   ("key", Log.Str (Protocol.key_hash p.Protocol.key));
                   ("status", Log.Str status);
                   ("cached", Log.Bool cached);
                   ("shed", Log.Bool shed);
                   ("queue_wait_s", Log.Num queue_wait);
                   ("wall_s", Log.Num wall);
                 ]
                 @
                 if phases = [] then []
                 else
                   [
                     ( "phases",
                       Log.Obj
                         (List.map (fun (name, s) -> (name, Log.Num s)) phases)
                     );
                   ]);
             slowest := Float.max !slowest (queue_wait +. wall);
             if status <> "ok" then trouble := true;
             Protocol.response ~id:j.j_id ~status ~cached
               ~key:p.Protocol.key ~queue_wait ~wall ?result ?error ())
           jobs)
    in
    (match (t.flight, t.config.slow_dump) with
    | Some fl, Some threshold when !slowest > threshold || !trouble ->
      (* At most one dump per dispatch: the whole ring goes into one file
         named by the batch counter. *)
      let path =
        Filename.concat t.config.dump_dir
          (Printf.sprintf "qcp-flight-%06d.json" c.c_batches)
      in
      (try
         Flight.dump_file path fl;
         Log.warn "flight-dump" (fun () ->
             [
               ("path", Log.Str path);
               ("slowest_s", Log.Num !slowest);
               ("records", Log.Int (Flight.length fl));
             ])
       with Sys_error msg ->
         Log.warn "flight-dump-failed" (fun () -> [ ("error", Log.Str msg) ]))
    | _ -> ());
    responses

  let stats_json t =
    let c = t.counters in
    let num v = Json.Num (float_of_int v) in
    let stats =
      Json.Obj
        [
          ("uptime_s", Json.Num (Clock.now () -. t.started));
          ("requests", num c.c_requests);
          ("placed", num c.c_placed);
          ("errors", num c.c_errors);
          ("timeouts", num c.c_timeouts);
          ("shed", num c.c_shed);
          ("unplaceable", num c.c_unplaceable);
          ("overloaded", num c.c_overloaded);
          ("batches", num c.c_batches);
          ("max_batch", num c.c_max_batch);
          ( "cache",
            Json.Obj
              [
                ("entries", num (Result_cache.length t.result_cache));
                ("capacity", num (Result_cache.capacity t.result_cache));
                ("hits", num (Result_cache.hits t.result_cache));
                ("misses", num (Result_cache.misses t.result_cache));
                ("evictions", num (Result_cache.evictions t.result_cache));
              ] );
          ( "queue_wait",
            Json.Obj
              [
                ( "bounds",
                  Json.Arr
                    (Array.to_list
                       (Array.map (fun b -> Json.Num b) qw_bounds)) );
                ( "counts",
                  Json.Arr (Array.to_list (Array.map num c.qw_counts)) );
                ("sum", Json.Num c.qw_sum);
                ("count", num c.qw_count);
              ] );
        ]
    in
    Json.to_string stats

  (* The engine's counters as registry-style series (the [serve.*]
     namespace), merged with the process-global registry — one snapshot
     feeding both the Prometheus exposition and anything else that walks
     {!Metrics.snapshot} shapes. *)
  let metrics_snapshot t =
    let c = t.counters in
    let g v = Metrics.Gauge v in
    let serve =
      [
        ("serve.batch_size_max", g (float_of_int c.c_max_batch));
        ("serve.batches", Metrics.Counter c.c_batches);
        ( "serve.cache.capacity",
          g (float_of_int (Result_cache.capacity t.result_cache)) );
        ( "serve.cache.entries",
          g (float_of_int (Result_cache.length t.result_cache)) );
        ("serve.cache.evictions", Metrics.Counter (Result_cache.evictions t.result_cache));
        ("serve.cache.hits", Metrics.Counter (Result_cache.hits t.result_cache));
        ("serve.cache.misses", Metrics.Counter (Result_cache.misses t.result_cache));
        ( "serve.queue_wait_seconds",
          Metrics.Histogram
            {
              bounds = qw_bounds;
              counts = Array.copy c.qw_counts;
              sum = c.qw_sum;
              count = c.qw_count;
            } );
        ("serve.requests", Metrics.Counter c.c_requests);
        ("serve.responses.error", Metrics.Counter c.c_errors);
        ("serve.responses.ok", Metrics.Counter c.c_placed);
        ("serve.responses.overloaded", Metrics.Counter c.c_overloaded);
        ("serve.responses.shed", Metrics.Counter c.c_shed);
        ("serve.responses.timeout", Metrics.Counter c.c_timeouts);
        ("serve.responses.unplaceable", Metrics.Counter c.c_unplaceable);
        ("serve.uptime_seconds", g (Clock.now () -. t.started));
      ]
    in
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (serve @ Metrics.snapshot Metrics.global)

  let stats_prometheus t =
    let buf = Buffer.create 4096 in
    Qcp_obs.Export.prometheus buf (metrics_snapshot t);
    Buffer.contents buf

  (* The wire protocol is line-delimited: a spliced result must not carry
     raw newlines.  Structural whitespace is the only place the trace
     renderer emits them (string content is escaped), so dropping newline
     bytes yields the same JSON document on one line. *)
  let compact text = String.concat "" (String.split_on_char '\n' text)

  let control t ~id request =
    match request with
    | Protocol.Ping ->
      Log.debug "control" (fun () ->
          [ ("op", Log.Str "ping"); ("id", Log.Str id) ]);
      Some (Protocol.response ~id ~status:"ok" ())
    | Protocol.Stats fmt ->
      Log.debug "control" (fun () ->
          [ ("op", Log.Str "stats"); ("id", Log.Str id) ]);
      let result =
        match fmt with
        | Protocol.Stats_json -> stats_json t
        | Protocol.Stats_prometheus ->
          Json.to_string (Json.Str (stats_prometheus t))
      in
      Some (Protocol.response ~id ~status:"ok" ~result ())
    | Protocol.Dump -> (
      Log.debug "control" (fun () ->
          [ ("op", Log.Str "dump"); ("id", Log.Str id) ]);
      match t.flight with
      | None ->
        Some
          (Protocol.response ~id ~status:"error"
             ~error:"flight recorder disabled (qcp serve --flight N)" ())
      | Some fl ->
        let buf = Buffer.create 65536 in
        Flight.dump buf fl;
        Some
          (Protocol.response ~id ~status:"ok"
             ~result:(compact (Buffer.contents buf))
             ()))
    | Protocol.Place _ | Protocol.Shutdown -> None

  let count_error t = t.counters.c_errors <- t.counters.c_errors + 1

  let count_overloaded t =
    t.counters.c_overloaded <- t.counters.c_overloaded + 1
end

(* ------------------------------------------------------------------ *)
(* Socket loop                                                         *)
(* ------------------------------------------------------------------ *)

type client = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes received, not yet split into lines *)
  mutable alive : bool;
}

let write_all client line =
  let data = line ^ "\n" in
  let len = String.length data in
  let pos = ref 0 in
  try
    while !pos < len do
      pos := !pos + Unix.write_substring client.fd data !pos (len - !pos)
    done
  with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> client.alive <- false

(* Split complete lines out of a client's receive buffer. *)
let take_lines buf =
  let data = Buffer.contents buf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_substring buf data (last + 1) (String.length data - last - 1);
    String.split_on_char '\n' (String.sub data 0 last)
    |> List.filter (fun l -> String.trim l <> "")

type queued = {
  q_client : client;
  q_job : Engine.job;
}

let listeners config =
  let unix_listener path =
    (* A stale socket file from a crashed daemon would make bind fail;
       connect-probing it is racy, so takeover is explicit: unlink only
       what is a socket. *)
    (try
       if (Unix.stat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
     with Unix.Unix_error (ENOENT, _, _) -> ());
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind fd (ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  in
  let tcp_listener port =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd SO_REUSEADDR true;
    Unix.bind fd (ADDR_INET (Unix.inet_addr_of_string config.host, port));
    Unix.listen fd 64;
    fd
  in
  let fds =
    Option.to_list (Option.map unix_listener config.socket_path)
    @ Option.to_list (Option.map tcp_listener config.port)
  in
  if fds = [] then
    invalid_arg "Server.serve: config names no listener (socket_path or port)";
  fds

let serve config =
  let engine = Engine.create config in
  if config.telemetry then Metrics.set_enabled true;
  (* Arm the structured logger: an explicit --log level wins; --verbose
     is an alias for debug.  The previous level is restored on drain so a
     daemon hosted inside a test or bench domain leaves the process-global
     logger as it found it. *)
  let prev_level = Log.level () in
  let level =
    match config.log_level with
    | Some _ as l -> l
    | None -> if config.verbose then Some Log.Debug else None
  in
  Option.iter (fun path -> Log.set_sink (Log.file_sink path)) config.log_file;
  Log.set_level level;
  if config.learn then
    Option.iter
      (fun path ->
        let loaded = Qcp.Portfolio.Learn.load path in
        Log.info "learn-load" (fun () ->
            [ ("path", Log.Str path); ("loaded", Log.Bool loaded) ]))
      (Qcp.Portfolio.Learn.default_path ());
  let listening = listeners config in
  Log.info "listening" (fun () ->
      Option.to_list
        (Option.map (fun p -> ("socket", Log.Str p)) config.socket_path)
      @ Option.to_list (Option.map (fun p -> ("port", Log.Int p)) config.port)
      @ [
          ("jobs", Log.Int config.jobs);
          ("cache_cap", Log.Int config.cache_cap);
          ("max_batch", Log.Int config.max_batch);
          ("queue_cap", Log.Int config.queue_cap);
          ("flight_cap", Log.Int config.flight_cap);
          ("telemetry", Log.Bool config.telemetry);
        ]);
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let stop = ref false in
  if config.install_signals then begin
    let handler = Sys.Signal_handle (fun _ -> stop := true) in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler
  end;
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  let queue : queued Queue.t = Queue.create () in
  let drop client =
    client.alive <- false;
    Hashtbl.remove clients client.fd;
    (try Unix.close client.fd with Unix.Unix_error _ -> ());
    Log.debug "client-disconnect" (fun () -> [])
  in
  let drain reason =
    if not !stop then begin
      stop := true;
      Log.info "drain" (fun () ->
          [
            ("reason", Log.Str reason);
            ("queued", Log.Int (Queue.length queue));
          ])
    end
  in
  let handle_line client line =
    let envelope = Engine.parse_line engine line in
    let id = envelope.Protocol.id in
    match envelope.Protocol.request with
    | Error msg ->
      Engine.count_error engine;
      Log.warn "bad-request" (fun () ->
          [ ("id", Log.Str id); ("error", Log.Str msg) ]);
      write_all client (Protocol.response ~id ~status:"error" ~error:msg ())
    | Ok Protocol.Shutdown ->
      drain "shutdown-request";
      write_all client (Protocol.response ~id ~status:"ok" ())
    | Ok ((Protocol.Ping | Protocol.Stats _ | Protocol.Dump) as req) ->
      Option.iter (write_all client) (Engine.control engine ~id req)
    | Ok (Protocol.Place place) ->
      if !stop then
        write_all client (Protocol.response ~id ~status:"shutting-down" ())
      else if Queue.length queue >= config.queue_cap then begin
        Engine.count_overloaded engine;
        Log.warn "overloaded" (fun () ->
            [ ("id", Log.Str id); ("queued", Log.Int (Queue.length queue)) ]);
        write_all client
          (Protocol.response ~id ~status:"overloaded"
             ~error:"request queue is full" ())
      end
      else
        Queue.add
          {
            q_client = client;
            q_job = Engine.make_job engine ~id ~arrival:(Clock.now ()) place;
          }
          queue
  in
  let dispatch_some () =
    let batch = ref [] in
    while Queue.length queue > 0 && List.length !batch < config.max_batch do
      batch := Queue.pop queue :: !batch
    done;
    let batch = List.rev !batch in
    if batch <> [] then begin
      Log.debug "dispatch" (fun () ->
          [
            ("batch", Log.Int (List.length batch));
            ("queued", Log.Int (Queue.length queue));
          ]);
      let responses =
        Engine.dispatch engine ~now:(Clock.now ())
          (List.map (fun q -> q.q_job) batch)
      in
      List.iter2
        (fun q response -> if q.q_client.alive then write_all q.q_client response)
        batch responses
    end
  in
  let budget_exhausted () =
    config.max_requests > 0
    && Engine.requests_served engine
       + Queue.length queue >= config.max_requests
  in
  while not (!stop && Queue.is_empty queue) do
    if !stop then
      (* Draining: no new work, just answer what is queued. *)
      dispatch_some ()
    else begin
      let fds =
        listening @ Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
      in
      let readable, _, _ =
        try Unix.select fds [] [] 0.2
        with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if List.mem fd listening then begin
            match (try Some (Unix.accept fd) with Unix.Unix_error _ -> None) with
            | Some (cfd, _) ->
              Log.debug "client-connect" (fun () -> []);
              Hashtbl.replace clients cfd
                { fd = cfd; buf = Buffer.create 256; alive = true }
            | None -> ()
          end
          else
            match Hashtbl.find_opt clients fd with
            | None -> ()
            | Some client -> (
              let chunk = Bytes.create 65536 in
              match
                try Unix.read fd chunk 0 (Bytes.length chunk)
                with Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> 0
              with
              | 0 -> drop client
              | n ->
                Buffer.add_subbytes client.buf chunk 0 n;
                List.iter (handle_line client) (take_lines client.buf)))
        readable;
      dispatch_some ();
      if budget_exhausted () then drain "max-requests"
    end
  done;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listening;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    clients;
  Option.iter
    (fun path -> try Unix.unlink path with Unix.Unix_error _ -> ())
    config.socket_path;
  if config.learn then
    Option.iter
      (fun path ->
        (try Qcp.Portfolio.Learn.save path with Sys_error _ -> ());
        Log.info "learn-save" (fun () -> [ ("path", Log.Str path) ]))
      (Qcp.Portfolio.Learn.default_path ());
  Log.info "exit" (fun () ->
      [ ("stats", Log.Str (Engine.stats_json engine)) ]);
  Log.set_level prev_level;
  if config.log_file <> None then Log.set_sink Log.stderr_sink
