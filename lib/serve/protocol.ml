module Json = Qcp_util.Json
module Environment = Qcp_env.Environment
module Env_format = Qcp_env.Env_format
module Qc_format = Qcp_circuit.Qc_format
module Options = Qcp.Options
module Placer = Qcp.Placer

type place = {
  env : Environment.t;
  circuit : Qcp_circuit.Circuit.t;
  options : Options.t;
  deadline : float option;
  telemetry : bool;
  key : string;
}

type stats_format = Stats_json | Stats_prometheus

type request =
  | Place of place
  | Ping
  | Stats of stats_format
  | Dump
  | Shutdown

type envelope = {
  id : string;
  request : (request, string) result;
}

(* ------------------------------------------------------------------ *)
(* Spec resolution (no file paths: remote clients must not name files) *)
(* ------------------------------------------------------------------ *)

let resolve_env spec =
  if String.contains spec '\n' then
    try Ok (Env_format.parse spec) with
    | Env_format.Parse_error (line, msg) ->
      Error (Printf.sprintf "inline env, line %d: %s" line msg)
  else
    match Qcp_env.Molecules.by_name spec with
    | Some env -> Ok env
    | None -> (
      match String.split_on_char ':' spec with
      | [ "chain"; n ] -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> Ok (Environment.chain n)
        | Some _ | None -> Error "chain:<n> needs a positive integer")
      | [ "grid"; r; c ] -> (
        match (int_of_string_opt r, int_of_string_opt c) with
        | Some r, Some c when r > 0 && c > 0 -> Ok (Environment.grid r c)
        | _ -> Error "grid:<rows>:<cols> needs positive integers")
      | _ ->
        Error
          (Printf.sprintf
             "unknown environment %S (molecules: %s; generators: chain:<n>, \
              grid:<r>:<c>; or inline .env text)"
             spec
             (String.concat ", " Qcp_env.Molecules.names)))

let resolve_circuit spec =
  if String.contains spec '\n' then
    try Ok (Qc_format.parse spec) with
    | Qc_format.Parse_error (line, msg) ->
      Error (Printf.sprintf "inline circuit, line %d: %s" line msg)
  else
    match Qcp_circuit.Catalog.by_name spec with
    | Some c -> Ok c
    | None -> (
      match Qcp_circuit.Library.by_name spec with
      | Some c -> Ok c
      | None ->
        Error
          (Printf.sprintf
             "unknown circuit %S (catalog: %s; library: %s; or inline .qc text)"
             spec
             (String.concat ", " Qcp_circuit.Catalog.names)
             (String.concat ", " Qcp_circuit.Library.names)))

(* ------------------------------------------------------------------ *)
(* Content-hash keys                                                   *)
(* ------------------------------------------------------------------ *)

let key options env circuit =
  String.concat "\n"
    [
      "qcp-serve-v1";
      Options.canonical options;
      Env_format.print env;
      Qc_format.print circuit;
    ]

let key_hash s =
  (* FNV-1a, 64-bit. *)
  let offset = 0xcbf29ce484222325L and prime = 0x100000001b3L in
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let cacheable p =
  not (p.options.Options.portfolio && p.options.Options.deadline <> None)

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let opt_member name json f ~default =
  match Json.member name json with
  | None | Some Json.Null -> Ok default
  | Some v -> (
    match f v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "field %S has the wrong type" name))

(* Decode the "options" object onto {!Options.default}.  Unknown names are
   rejected (a typo silently falling back to a default would cache-key the
   request differently than the client intended), as are the two fields
   the server owns: [jobs] (execution detail, excluded from keys) and
   [spill] (writes server-side files). *)
let options_of_json env json =
  let known =
    [
      "threshold"; "monomorphisms"; "lookahead"; "fine_tune"; "leaf_override";
      "router"; "reuse_cap"; "sequential"; "commute"; "balance"; "score_cache";
      "bounded_search"; "window"; "coarsen"; "root_cap"; "vcycle"; "portfolio";
      "deadline"; "strategies"; "learn";
    ]
  in
  let* fields =
    match json with
    | Json.Obj fields -> Ok fields
    | Json.Null -> Ok []
    | _ -> Error "field \"options\" must be an object"
  in
  let* () =
    List.fold_left
      (fun acc (name, _) ->
        let* () = acc in
        if List.mem name known then Ok ()
        else if name = "jobs" then
          Error "option \"jobs\" is server-side (qcp serve --jobs)"
        else if name = "spill" then Error "option \"spill\" is not servable"
        else Error (Printf.sprintf "unknown option %S" name))
      (Ok ()) fields
  in
  let* threshold =
    opt_member "threshold" json Json.to_float
      ~default:(Environment.min_threshold_connected env)
  in
  let base = Options.default ~threshold in
  let* monomorphism_limit =
    opt_member "monomorphisms" json Json.to_int
      ~default:base.Options.monomorphism_limit
  in
  let* lookahead =
    opt_member "lookahead" json Json.to_bool ~default:base.Options.lookahead
  in
  let* fine_tune_passes =
    opt_member "fine_tune" json Json.to_int
      ~default:base.Options.fine_tune_passes
  in
  let* leaf_override =
    opt_member "leaf_override" json Json.to_bool
      ~default:base.Options.leaf_override
  in
  let* router =
    opt_member "router" json
      (fun v ->
        match Json.to_str v with
        | Some "bisect" -> Some (Some Options.Bisect)
        | Some "weighted" -> Some (Some Options.Bisect_weighted)
        | Some "token" -> Some (Some Options.Token)
        | Some "odd-even" -> Some (Some Options.Odd_even)
        | Some _ | None -> None)
      ~default:(Some base.Options.router)
  in
  let* router =
    match router with
    | Some r -> Ok r
    | None -> Error "unknown router (bisect, weighted, token, odd-even)"
  in
  let* reuse_cap =
    opt_member "reuse_cap" json
      (fun v ->
        match Json.to_float v with
        | Some c when c > 0.0 -> Some (Some c)
        | Some _ -> Some None (* 0 or negative disables the cap *)
        | None -> None)
      ~default:base.Options.reuse_cap
  in
  let* sequential = opt_member "sequential" json Json.to_bool ~default:false in
  let* commute_prepass =
    opt_member "commute" json Json.to_bool ~default:base.Options.commute_prepass
  in
  let* balance_boundaries =
    opt_member "balance" json Json.to_bool
      ~default:base.Options.balance_boundaries
  in
  let* score_cache =
    opt_member "score_cache" json Json.to_bool ~default:base.Options.score_cache
  in
  let* bounded_search =
    opt_member "bounded_search" json Json.to_bool
      ~default:base.Options.bounded_search
  in
  let* window =
    opt_member "window" json
      (fun v -> Option.map Option.some (Json.to_int v))
      ~default:base.Options.window
  in
  let* coarsen =
    opt_member "coarsen" json Json.to_bool ~default:base.Options.coarsen
  in
  let* root_cap =
    opt_member "root_cap" json
      (fun v -> Option.map Option.some (Json.to_int v))
      ~default:base.Options.root_cap
  in
  let* vcycle = opt_member "vcycle" json Json.to_int ~default:base.Options.vcycle in
  let* portfolio =
    opt_member "portfolio" json Json.to_bool ~default:base.Options.portfolio
  in
  let* strategies =
    opt_member "strategies" json
      (fun v ->
        match v with
        | Json.Arr items ->
          let rec strs acc = function
            | [] -> Some (List.rev acc)
            | item :: rest -> (
              match Json.to_str item with
              | Some s -> strs (s :: acc) rest
              | None -> None)
          in
          Option.map Option.some (strs [] items)
        | _ -> None)
      ~default:None
  in
  let* portfolio_learn =
    opt_member "learn" json Json.to_bool ~default:base.Options.portfolio_learn
  in
  let* deadline =
    opt_member "deadline" json
      (fun v -> Option.map Option.some (Json.to_float v))
      ~default:None
  in
  (* Mirror the CLI: strategies / learn / a race deadline imply the
     portfolio.  (This is the race's anytime budget, part of the content
     key; a plain request's timeout budget is the top-level "deadline"
     field, enforced out-of-band so the cached result is shared across
     budgets.) *)
  let portfolio =
    portfolio || strategies <> None || portfolio_learn || deadline <> None
  in
  let options =
    {
      base with
      Options.threshold;
      monomorphism_limit;
      lookahead;
      fine_tune_passes;
      leaf_override;
      router;
      reuse_cap;
      model =
        (if sequential then Qcp_circuit.Timing.Sequential
         else Qcp_circuit.Timing.Asap);
      commute_prepass;
      balance_boundaries;
      score_cache;
      bounded_search;
      window;
      coarsen;
      root_cap;
      vcycle;
      jobs = 0;
      portfolio;
      deadline;
      portfolio_strategies =
        Option.value strategies ~default:Options.all_strategies;
      portfolio_learn;
    }
  in
  Ok options

let parse_place ~resolve_env ~resolve_circuit json =
  let* env_spec =
    match Option.bind (Json.member "env" json) Json.to_str with
    | Some s -> Ok s
    | None -> Error "place request needs a string field \"env\""
  in
  let* circuit_spec =
    match Option.bind (Json.member "circuit" json) Json.to_str with
    | Some s -> Ok s
    | None -> Error "place request needs a string field \"circuit\""
  in
  let* env = resolve_env env_spec in
  let* circuit = resolve_circuit circuit_spec in
  let options_json =
    Option.value (Json.member "options" json) ~default:Json.Null
  in
  let* options = options_of_json env options_json in
  let* deadline =
    opt_member "deadline" json
      (fun v -> Option.map Option.some (Json.to_float v))
      ~default:None
  in
  let* telemetry = opt_member "telemetry" json Json.to_bool ~default:false in
  Ok
    (Place
       {
         env;
         circuit;
         options;
         deadline;
         telemetry;
         key = key options env circuit;
       })

let parse_line ?(resolve_env = resolve_env) ?(resolve_circuit = resolve_circuit)
    line =
  match Json.parse line with
  | Error msg -> { id = ""; request = Error ("bad JSON: " ^ msg) }
  | Ok json ->
    let id =
      match Option.bind (Json.member "id" json) Json.to_str with
      | Some id -> id
      | None -> ""
    in
    let request =
      match Option.bind (Json.member "op" json) Json.to_str with
      | None | Some "place" -> parse_place ~resolve_env ~resolve_circuit json
      | Some "ping" -> Ok Ping
      | Some "stats" -> (
        match Option.bind (Json.member "format" json) Json.to_str with
        | None | Some "json" -> Ok (Stats Stats_json)
        | Some ("prometheus" | "prom") -> Ok (Stats Stats_prometheus)
        | Some other ->
          Error (Printf.sprintf "unknown stats format %S (json, prometheus)" other))
      | Some "dump" -> Ok Dump
      | Some "shutdown" -> Ok Shutdown
      | Some other -> Error (Printf.sprintf "unknown op %S" other)
    in
    { id; request }

(* ------------------------------------------------------------------ *)
(* Response rendering                                                  *)
(* ------------------------------------------------------------------ *)

let int_arr a = Json.Arr (Array.to_list (Array.map (fun v -> Json.Num (float_of_int v)) a))

let result_of_program ~telemetry program =
  let stats =
    (* Reuse the canonical stats printer rather than duplicating its field
       list; its output is JSON, so it parses back losslessly. *)
    match Json.parse (Format.asprintf "%a" Placer.pp_json program.Placer.stats) with
    | Ok json -> json
    | Error _ -> Json.Null
  in
  let placement field = function
    | Some a -> [ (field, int_arr a) ]
    | None -> []
  in
  let fidelity =
    let f = Qcp.Fidelity.estimate program in
    if f < 1.0 then [ ("fidelity", Json.Num f) ] else []
  in
  let metrics =
    if not telemetry then []
    else begin
      let b = Buffer.create 512 in
      Qcp_obs.Export.metrics_json b (Placer.metrics program);
      match Json.parse (Buffer.contents b) with
      | Ok json -> [ ("metrics", json) ]
      | Error _ -> []
    end
  in
  Json.Obj
    ([
       ("runtime", Json.Num (Placer.runtime program));
       ("runtime_seconds", Json.Num (Placer.runtime_seconds program));
       ("subcircuits", Json.Num (float_of_int (Placer.subcircuit_count program)));
       ("swap_stages", Json.Num (float_of_int (Placer.swap_stage_count program)));
       ("swap_depth", Json.Num (float_of_int (Placer.swap_depth_total program)));
       ("swap_count", Json.Num (float_of_int (Placer.swap_count_total program)));
     ]
    @ placement "initial_placement" (Placer.initial_placement program)
    @ placement "final_placement" (Placer.final_placement program)
    @ fidelity
    @ [ ("stats", stats) ]
    @ metrics)

(* [result] is pre-rendered JSON text spliced in verbatim: the cache
   stores rendered result bytes, so a hit's response body is bit-identical
   to the cold solve's without a decode/re-encode round-trip. *)
let response ~id ~status ?cached ?key ?queue_wait ?wall ?result ?error () =
  let b = Buffer.create 256 in
  let field name json =
    Buffer.add_char b ',';
    Json.to_buffer b (Json.Str name);
    Buffer.add_char b ':';
    Json.to_buffer b json
  in
  Buffer.add_string b "{\"id\":";
  Json.to_buffer b (Json.Str id);
  field "status" (Json.Str status);
  Option.iter (fun c -> field "cached" (Json.Bool c)) cached;
  Option.iter (fun k -> field "key" (Json.Str (key_hash k))) key;
  Option.iter (fun s -> field "queue_wait_s" (Json.Num s)) queue_wait;
  Option.iter (fun s -> field "wall_s" (Json.Num s)) wall;
  Option.iter
    (fun text ->
      Buffer.add_string b ",\"result\":";
      Buffer.add_string b text)
    result;
  Option.iter (fun e -> field "error" (Json.Str e)) error;
  Buffer.add_char b '}';
  Buffer.contents b
