(** Minimal blocking client for the [qcp serve] protocol: connect, send
    request lines, read response lines.  Used by [qcp request] (so CI and
    scripts need no netcat), the throughput load generator and the test
    suite. *)

type address =
  | Unix_socket of string
  | Tcp of string * int  (** host, port *)

type t

val connect : ?retries:int -> address -> t
(** Connect, retrying [retries] times (default 50) with a 100 ms pause —
    callers usually race the daemon's startup.  Raises the last
    [Unix.Unix_error] when every attempt fails. *)

val send_line : t -> string -> unit
(** Write one request line (the newline is appended). *)

val recv_line : t -> string
(** Read the next response line (blocking).  Raises [End_of_file] when
    the server closes the connection. *)

val request : t -> string -> string
(** [send_line] then [recv_line] — one synchronous round trip. *)

val close : t -> unit
